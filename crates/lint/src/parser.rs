//! A lightweight item/block parser over the token stream.
//!
//! The per-file pattern matchers in the original rule set only needed a flat
//! token window; the determinism family needs *structure*: which `fn` a
//! token lives in, what the enclosing `impl`'s self type is, what a file
//! `use`s, and which fields a `struct` declares. This module recovers that
//! structure with a tolerant single-pass parser on top of
//! [`crate::lexer::tokenize`] — no expression parsing, just item headers,
//! brace-matched bodies, per-item attribute capture, flattened `use` trees,
//! and struct-field types. Anything it does not recognize is skipped, so
//! malformed or exotic input degrades to "no structure" rather than an
//! error; rules built on it must treat absence of information as
//! "do not flag".

use crate::lexer::{Token, TokenKind};

/// What kind of item a parsed node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free or associated).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `impl` block; `name` is the self-type head, children are its items.
    Impl,
    /// `mod`; inline bodies are parsed into `children`.
    Mod,
    /// `use` declaration; flatten with [`flatten_use`] over `header`.
    Use,
    /// `static` item; `mutable` is `true` for `static mut`.
    Static {
        /// `true` for `static mut`.
        mutable: bool,
    },
    /// `const` item.
    Const,
    /// `type Name = ...;` alias; target tokens are in `header` after `=`.
    TypeAlias,
    /// `extern crate ...;`.
    ExternCrate,
    /// Item-position macro invocation (`thread_local! { ... }`,
    /// `macro_rules! name { ... }`); `name` is the macro path head.
    MacroCall,
}

/// One `#[...]` attribute attached to an item.
#[derive(Debug, Clone)]
pub struct Attr {
    /// 1-based source line of the `#`.
    pub line: u32,
    /// First path segment inside the brackets (`cfg`, `must_use`, ...).
    pub path: String,
    /// Half-open token range of the attribute's interior.
    pub range: (usize, usize),
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name (fn/struct/... name; for `impl`, the self-type head).
    pub name: Option<String>,
    /// Attributes captured immediately before the item.
    pub attrs: Vec<Attr>,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Token index of the item keyword.
    pub kw: usize,
    /// Half-open token range from the keyword up to (excluding) the body
    /// brace or terminating semicolon — the signature/header tokens.
    pub header: (usize, usize),
    /// Half-open token range of the body interior (inside the braces), when
    /// the item has a braced body.
    pub body: Option<(usize, usize)>,
    /// One past the item's final token.
    pub end: usize,
    /// Nested items (for `mod` and `impl` bodies).
    pub children: Vec<Item>,
}

/// One flattened `use` import: the full path as written and the name it
/// binds locally (the alias, the final segment, or `*` for globs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Path segments as written (`["std", "collections", "HashMap"]`).
    pub path: Vec<String>,
    /// Local binding name (`HashMap`, or the `as` alias, or `*`).
    pub name: String,
}

/// Parses the whole token stream into a flat list of top-level items
/// (with `mod`/`impl` children nested).
#[must_use]
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    parse_range(tokens, 0, tokens.len())
}

/// Index of the token matching the opening delimiter at `open`, or `end`
/// when unmatched (callers clamp with `.min(end)` after `+ 1`).
#[must_use]
pub fn matching_close(t: &[Token], open: usize, end: usize) -> usize {
    let oc = t[open].text.chars().next().unwrap_or('(');
    let cc = match oc {
        '(' => ')',
        '[' => ']',
        _ => '}',
    };
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        if t[k].is_open(oc) {
            depth += 1;
        } else if t[k].is_close(cc) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end
}

fn parse_range(t: &[Token], mut i: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    while i < end {
        // Inner attribute `#![...]`: file/module metadata, skip.
        if t[i].is_punct("#")
            && t.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && t.get(i + 2).is_some_and(|n| n.is_open('['))
        {
            i = (matching_close(t, i + 2, end) + 1).min(end);
            continue;
        }
        // Outer attributes.
        let mut attrs = Vec::new();
        while i + 1 < end && t[i].is_punct("#") && t[i + 1].is_open('[') {
            let close = matching_close(t, i + 1, end);
            let path = t
                .get(i + 2)
                .filter(|tok| tok.kind == TokenKind::Ident)
                .map(|tok| tok.text.clone())
                .unwrap_or_default();
            attrs.push(Attr {
                line: t[i].line,
                path,
                range: (i + 2, close),
            });
            i = (close + 1).min(end);
        }
        if i >= end {
            break;
        }
        // Visibility and qualifiers.
        let mut j = i;
        loop {
            if j < end && t[j].is_ident("pub") {
                j += 1;
                if j < end && t[j].is_open('(') {
                    j = (matching_close(t, j, end) + 1).min(end);
                }
            } else if j < end
                && (t[j].is_ident("unsafe") || t[j].is_ident("async") || t[j].is_ident("default"))
            {
                j += 1;
            } else if j < end
                && t[j].is_ident("extern")
                && t.get(j + 1).is_some_and(|n| n.kind == TokenKind::Text)
            {
                j += 2;
            } else if j < end
                && t[j].is_ident("const")
                && t.get(j + 1).is_some_and(|n| {
                    n.is_ident("fn") || n.is_ident("unsafe") || n.is_ident("extern")
                })
            {
                j += 1; // `const fn` qualifier; bare `const NAME` dispatches below
            } else {
                break;
            }
        }
        if j >= end {
            break;
        }
        match parse_one(t, j, end, attrs) {
            Some(item) => {
                i = item.end;
                items.push(item);
            }
            None => i = j + 1,
        }
    }
    items
}

/// Scans forward from `from` for a `{` or `;` at zero paren/bracket depth;
/// returns `(index, is_brace)`. `end` when neither occurs.
fn find_body_or_semi(t: &[Token], from: usize, end: usize) -> (usize, bool) {
    let mut k = from;
    while k < end {
        if t[k].is_open('(') || t[k].is_open('[') {
            k = (matching_close(t, k, end) + 1).min(end);
            continue;
        }
        if t[k].is_open('{') {
            return (k, true);
        }
        if t[k].is_punct(";") {
            return (k, false);
        }
        k += 1;
    }
    (end, false)
}

/// Parses one item whose keyword is at `kw`; returns `None` for anything
/// unrecognized (the caller then advances one token).
fn parse_one(t: &[Token], kw: usize, end: usize, attrs: Vec<Attr>) -> Option<Item> {
    let line = t[kw].line;
    let name_at = |idx: usize| -> Option<String> {
        t.get(idx)
            .filter(|n| n.kind == TokenKind::Ident)
            .map(|n| n.text.clone())
    };
    let make = |kind: ItemKind,
                name: Option<String>,
                attrs: Vec<Attr>,
                header_end: usize,
                body: Option<(usize, usize)>,
                item_end: usize,
                children: Vec<Item>| {
        Some(Item {
            kind,
            name,
            attrs,
            line,
            kw,
            header: (kw, header_end),
            body,
            end: item_end.min(end),
            children,
        })
    };

    let kw_text = if t[kw].kind == TokenKind::Ident {
        t[kw].text.as_str()
    } else {
        return None;
    };
    match kw_text {
        "fn" => {
            let name = name_at(kw + 1);
            let (at, is_brace) = find_body_or_semi(t, kw + 2, end);
            if is_brace {
                let close = matching_close(t, at, end);
                make(
                    ItemKind::Fn,
                    name,
                    attrs,
                    at,
                    Some((at + 1, close)),
                    close + 1,
                    Vec::new(),
                )
            } else {
                make(ItemKind::Fn, name, attrs, at, None, at + 1, Vec::new())
            }
        }
        "struct" | "enum" | "union" | "trait" => {
            let kind = match kw_text {
                "struct" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                "union" => ItemKind::Union,
                _ => ItemKind::Trait,
            };
            let name = name_at(kw + 1);
            let (at, is_brace) = find_body_or_semi(t, kw + 2, end);
            if is_brace {
                let close = matching_close(t, at, end);
                // Braced-then-semi tuple forms don't occur; `struct X { .. }`
                // ends at the close brace.
                make(
                    kind,
                    name,
                    attrs,
                    at,
                    Some((at + 1, close)),
                    close + 1,
                    Vec::new(),
                )
            } else {
                // Unit or tuple struct: `struct X;` / `struct X(A, B);`.
                make(kind, name, attrs, at, None, at + 1, Vec::new())
            }
        }
        "impl" => {
            let mut k = kw + 1;
            if k < end && t[k].text.starts_with('<') && t[k].kind == TokenKind::Punct {
                k = skip_angles(t, k, end);
            }
            // Self type is everything up to `{`; with a trait impl, the part
            // after `for`.
            let (open, is_brace) = find_body_or_semi(t, k, end);
            if !is_brace {
                return make(
                    ItemKind::Impl,
                    None,
                    attrs,
                    open,
                    None,
                    open + 1,
                    Vec::new(),
                );
            }
            let mut ty_start = k;
            let mut m = k;
            while m < open {
                if t[m].is_ident("for") && !t.get(m + 1).is_some_and(|n| n.is_punct("<")) {
                    ty_start = m + 1;
                }
                if t[m].is_open('(') || t[m].is_open('[') {
                    m = (matching_close(t, m, open) + 1).min(open);
                    continue;
                }
                m += 1;
            }
            let name = type_path(&t[ty_start..open]).last().cloned();
            let close = matching_close(t, open, end);
            let children = parse_range(t, open + 1, close);
            make(
                ItemKind::Impl,
                name,
                attrs,
                open,
                Some((open + 1, close)),
                close + 1,
                children,
            )
        }
        "mod" => {
            let name = name_at(kw + 1);
            let (at, is_brace) = find_body_or_semi(t, kw + 2, end);
            if is_brace {
                let close = matching_close(t, at, end);
                let children = parse_range(t, at + 1, close);
                make(
                    ItemKind::Mod,
                    name,
                    attrs,
                    at,
                    Some((at + 1, close)),
                    close + 1,
                    children,
                )
            } else {
                make(ItemKind::Mod, name, attrs, at, None, at + 1, Vec::new())
            }
        }
        "use" => {
            let mut k = kw + 1;
            while k < end && !t[k].is_punct(";") {
                if t[k].is_open('{') {
                    k = (matching_close(t, k, end) + 1).min(end);
                    continue;
                }
                k += 1;
            }
            make(ItemKind::Use, None, attrs, k, None, k + 1, Vec::new())
        }
        "static" => {
            let mutable = t.get(kw + 1).is_some_and(|n| n.is_ident("mut"));
            let name = name_at(kw + 1 + usize::from(mutable));
            let (at, _) = find_body_or_semi(t, kw + 1, end);
            make(
                ItemKind::Static { mutable },
                name,
                attrs,
                at,
                None,
                at + 1,
                Vec::new(),
            )
        }
        "const" => {
            let name = name_at(kw + 1);
            let (at, _) = find_body_or_semi(t, kw + 1, end);
            make(ItemKind::Const, name, attrs, at, None, at + 1, Vec::new())
        }
        "type" => {
            let name = name_at(kw + 1);
            let (at, _) = find_body_or_semi(t, kw + 1, end);
            make(
                ItemKind::TypeAlias,
                name,
                attrs,
                at,
                None,
                at + 1,
                Vec::new(),
            )
        }
        "extern" if t.get(kw + 1).is_some_and(|n| n.is_ident("crate")) => {
            let (at, _) = find_body_or_semi(t, kw + 1, end);
            make(
                ItemKind::ExternCrate,
                name_at(kw + 2),
                attrs,
                at,
                None,
                at + 1,
                Vec::new(),
            )
        }
        _ => {
            // Item-position macro call: `name!(...)`, `name! { ... }`,
            // `macro_rules! name { ... }`.
            if t.get(kw + 1).is_some_and(|n| n.is_punct("!")) {
                let name = Some(t[kw].text.clone());
                let mut k = kw + 2;
                if t.get(k).is_some_and(|n| n.kind == TokenKind::Ident) {
                    k += 1; // `macro_rules! name`
                }
                if k < end && t[k].kind == TokenKind::Open {
                    let brace = t[k].is_open('{');
                    let close = matching_close(t, k, end);
                    let mut item_end = close + 1;
                    if !brace && t.get(item_end).is_some_and(|n| n.is_punct(";")) {
                        item_end += 1;
                    }
                    return Some(Item {
                        kind: ItemKind::MacroCall,
                        name,
                        attrs,
                        line,
                        kw,
                        header: (kw, k),
                        body: Some((k + 1, close)),
                        end: item_end.min(end),
                        children: Vec::new(),
                    });
                }
            }
            None
        }
    }
}

/// Skips a balanced `<...>` generic group starting at `from` (a token whose
/// text begins with `<`); returns the index one past the closing `>`.
#[must_use]
pub fn skip_angles(t: &[Token], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = from;
    while k < end {
        if t[k].kind == TokenKind::Punct {
            match t[k].text.as_str() {
                "<" | "<=" => depth += 1,
                "<<" => depth += 2,
                ">" | ">=" => depth -= 1,
                ">>" => depth -= 2,
                ";" if depth <= 0 => return k,
                _ => {}
            }
            if depth <= 0 && matches!(t[k].text.as_str(), ">" | ">>" | ">=") {
                return k + 1;
            }
        }
        k += 1;
    }
    end
}

/// Extracts the leading type path from a type-position token slice:
/// `&'a mut std::collections::HashMap<K, V>` → `["std", "collections",
/// "HashMap"]`. Returns an empty path for shapes the heuristic does not
/// understand (qualified paths, `dyn` objects behind pointers, tuples, ...).
#[must_use]
pub fn type_path(toks: &[Token]) -> Vec<String> {
    let mut i = 0;
    while i < toks.len() {
        let tok = &toks[i];
        let skip = tok.is_punct("&")
            || tok.is_punct("*")
            || tok.kind == TokenKind::Lifetime
            || tok.is_ident("mut")
            || tok.is_ident("const")
            || tok.is_ident("dyn");
        if skip {
            i += 1;
        } else {
            break;
        }
    }
    let mut path = Vec::new();
    while i < toks.len() {
        let tok = &toks[i];
        if tok.kind == TokenKind::Ident {
            path.push(tok.text.clone());
            if toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                i += 2;
                continue;
            }
        }
        break;
    }
    path
}

/// Flattens the use-tree in `toks` (the tokens between `use` and `;`) into
/// individual imports.
#[must_use]
pub fn flatten_use(toks: &[Token]) -> Vec<UseImport> {
    let mut out = Vec::new();
    let mut i = 0;
    // Leading `::` for 2015-style absolute paths.
    if toks.first().is_some_and(|tok| tok.is_punct("::")) {
        i = 1;
    }
    walk_use(toks, &mut i, &[], &mut out);
    out
}

fn finish_use(mut path: Vec<String>, alias: Option<String>, out: &mut Vec<UseImport>) {
    // `use a::b::{self}` / `use a::b as c` binding names.
    if path.last().is_some_and(|s| s == "self") && path.len() > 1 {
        path.pop();
    }
    let name = match alias {
        Some(a) => a,
        None => match path.last() {
            Some(last) => last.clone(),
            None => return,
        },
    };
    out.push(UseImport { path, name });
}

fn walk_use(t: &[Token], i: &mut usize, prefix: &[String], out: &mut Vec<UseImport>) {
    let mut path = prefix.to_vec();
    loop {
        let Some(tok) = t.get(*i) else {
            if path.len() > prefix.len() {
                finish_use(path, None, out);
            }
            return;
        };
        if tok.kind == TokenKind::Ident && tok.text != "as" {
            path.push(tok.text.clone());
            *i += 1;
            if t.get(*i).is_some_and(|n| n.is_punct("::")) {
                *i += 1;
                continue;
            }
            if t.get(*i).is_some_and(|n| n.is_ident("as")) {
                *i += 1;
                let alias = t.get(*i).filter(|n| n.kind == TokenKind::Ident).map(|n| {
                    let a = n.text.clone();
                    *i += 1;
                    a
                });
                finish_use(path, alias, out);
                return;
            }
            finish_use(path, None, out);
            return;
        } else if tok.is_open('{') {
            *i += 1;
            loop {
                match t.get(*i) {
                    None => return,
                    Some(n) if n.is_close('}') => {
                        *i += 1;
                        return;
                    }
                    Some(n) if n.is_punct(",") => *i += 1,
                    Some(_) => walk_use(t, i, &path, out),
                }
            }
        } else if tok.is_punct("*") {
            *i += 1;
            out.push(UseImport {
                path,
                name: "*".to_string(),
            });
            return;
        } else {
            *i += 1;
            return;
        }
    }
}

/// Extracts `(field, type_path)` pairs from a braced struct body.
#[must_use]
pub fn struct_fields(t: &[Token], body: (usize, usize)) -> Vec<(String, Vec<String>)> {
    let (mut i, end) = body;
    let mut out = Vec::new();
    while i < end {
        if t[i].is_punct("#") && t.get(i + 1).is_some_and(|n| n.is_open('[')) {
            i = (matching_close(t, i + 1, end) + 1).min(end);
            continue;
        }
        if t[i].is_ident("pub") {
            i += 1;
            if i < end && t[i].is_open('(') {
                i = (matching_close(t, i, end) + 1).min(end);
            }
            continue;
        }
        if t[i].kind == TokenKind::Ident && t.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let name = t[i].text.clone();
            let ty_start = i + 2;
            let mut k = ty_start;
            let mut angle = 0i32;
            while k < end {
                if t[k].kind == TokenKind::Open {
                    k = (matching_close(t, k, end) + 1).min(end);
                    continue;
                }
                if t[k].kind == TokenKind::Punct {
                    match t[k].text.as_str() {
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        "," if angle <= 0 => break,
                        _ => {}
                    }
                }
                k += 1;
            }
            out.push((name, type_path(&t[ty_start..k])));
            i = (k + 1).min(end);
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{flatten_use, parse_items, struct_fields, type_path, ItemKind};
    use crate::lexer::tokenize;

    fn first_use_imports(src: &str) -> Vec<(Vec<String>, String)> {
        let toks = tokenize(src);
        let items = parse_items(&toks);
        let item = items
            .iter()
            .find(|i| i.kind == ItemKind::Use)
            .expect("use item");
        flatten_use(&toks[item.kw + 1..item.header.1])
            .into_iter()
            .map(|u| (u.path, u.name))
            .collect()
    }

    #[test]
    fn parses_fns_impls_and_mods() {
        let src = "
            pub fn free(x: u32) -> u32 { x + 1 }
            struct Registry { by_name: std::collections::HashMap<String, u32> }
            impl Registry {
                pub fn len(&self) -> usize { 0 }
            }
            mod inner {
                fn hidden() {}
            }
        ";
        let toks = tokenize(src);
        let items = parse_items(&toks);
        let kinds: Vec<&ItemKind> = items.iter().map(|i| &i.kind).collect();
        assert_eq!(
            kinds,
            [
                &ItemKind::Fn,
                &ItemKind::Struct,
                &ItemKind::Impl,
                &ItemKind::Mod
            ]
        );
        assert_eq!(items[0].name.as_deref(), Some("free"));
        assert_eq!(items[2].name.as_deref(), Some("Registry"));
        assert_eq!(items[2].children.len(), 1);
        assert_eq!(items[2].children[0].name.as_deref(), Some("len"));
        assert_eq!(items[3].children.len(), 1);
    }

    #[test]
    fn trait_impl_self_type_wins_over_trait_path() {
        let src =
            "impl<T: Clone> iter::Iterator for crate::model::Sweep<T> { fn next(&mut self) {} }";
        let toks = tokenize(src);
        let items = parse_items(&toks);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name.as_deref(), Some("Sweep"));
    }

    #[test]
    fn use_trees_flatten_with_groups_aliases_and_globs() {
        let imports = first_use_imports("use std::collections::{HashMap, BTreeMap as Sorted};");
        assert!(imports.contains(&(
            vec!["std".into(), "collections".into(), "HashMap".into()],
            "HashMap".into()
        )));
        assert!(imports.contains(&(
            vec!["std".into(), "collections".into(), "BTreeMap".into()],
            "Sorted".into()
        )));

        let glob = first_use_imports("use cordoba_core::prelude::*;");
        assert_eq!(glob[0].1, "*");

        let selfish = first_use_imports("use std::fs::{self, File};");
        assert!(selfish.contains(&(vec!["std".into(), "fs".into()], "fs".into())));
        assert!(selfish.contains(&(
            vec!["std".into(), "fs".into(), "File".into()],
            "File".into()
        )));
    }

    #[test]
    fn struct_fields_capture_type_heads() {
        let src = "struct Cache { entries: Mutex<HashMap<u64, f64>>, hits: AtomicU64, name: &'static str }";
        let toks = tokenize(src);
        let items = parse_items(&toks);
        let body = items[0].body.expect("braced body");
        let fields = struct_fields(&toks, body);
        assert_eq!(fields[0], ("entries".into(), vec!["Mutex".into()]));
        assert_eq!(fields[1], ("hits".into(), vec!["AtomicU64".into()]));
        assert_eq!(fields[2], ("name".into(), vec!["str".into()]));
    }

    #[test]
    fn type_path_strips_references_and_keeps_segments() {
        let toks = tokenize("&'a mut std::collections::HashMap<String, u32>");
        assert_eq!(
            type_path(&toks),
            ["std".to_string(), "collections".into(), "HashMap".into()]
        );
        let toks = tokenize("dyn Iterator<Item = u32>");
        assert_eq!(type_path(&toks), ["Iterator".to_string()]);
    }

    #[test]
    fn statics_consts_aliases_and_macros_parse() {
        let src = "
            static mut COUNTER: u64 = 0;
            static TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());
            const LIMIT: usize = 8;
            type Index = HashMap<u64, f64>;
            thread_local! { static SLOT: RefCell<u32> = RefCell::new(0); }
        ";
        let toks = tokenize(src);
        let items = parse_items(&toks);
        assert_eq!(items[0].kind, ItemKind::Static { mutable: true });
        assert_eq!(items[0].name.as_deref(), Some("COUNTER"));
        assert_eq!(items[1].kind, ItemKind::Static { mutable: false });
        assert_eq!(items[2].kind, ItemKind::Const);
        assert_eq!(items[3].kind, ItemKind::TypeAlias);
        assert_eq!(items[3].name.as_deref(), Some("Index"));
        assert_eq!(items[4].kind, ItemKind::MacroCall);
        assert_eq!(items[4].name.as_deref(), Some("thread_local"));
    }

    #[test]
    fn attributes_attach_to_their_item() {
        let src = "#[must_use]\n#[cfg(feature = \"x\")]\npub fn f() -> u32 { 1 }";
        let toks = tokenize(src);
        let items = parse_items(&toks);
        assert_eq!(items[0].attrs.len(), 2);
        assert_eq!(items[0].attrs[0].path, "must_use");
        assert_eq!(items[0].attrs[1].path, "cfg");
    }
}
