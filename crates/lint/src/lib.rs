//! `cordoba-lint` — domain-aware static analysis for the CORDOBA workspace.
//!
//! CORDOBA's carbon arithmetic is only trustworthy because it runs on typed
//! physical quantities (`cordoba_carbon::units`), and its results are only
//! comparable because every sweep is a pure function of its inputs. This
//! crate mechanically enforces both families of conventions — the ones the
//! type system cannot — across every `.rs` file in the workspace:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `unit-laundering` | `Quantity::new(x.value() * y.value())` outside `units.rs` |
//! | `no-panic` | `unwrap`/`expect`/`panic!`/`unreachable!` in library code |
//! | `float-eq` | `==`/`!=` against float literals |
//! | `lossy-cast` | bare numeric `as` casts in the carbon/tech kernels |
//! | `raw-constant` | bare literals equal to known physical constants |
//! | `missing-must-use` | public fns returning unit quantities without `#[must_use]` |
//! | `nondet-iteration` | hash-ordered iteration where order reaches the result |
//! | `wall-clock` | `SystemTime::now`/`Instant::now` outside obs/bench/cli |
//! | `raw-thread` | `std::thread`/`mpsc` outside cordoba-par |
//! | `ambient-input` | `env::var`/`std::fs` reads in library crates |
//! | `atomic-ordering` | `Ordering::Relaxed` outside the obs registry (warn) |
//! | `global-state` | `static mut` / interior-mutable statics outside obs |
//!
//! The last six form the `determinism` family (see [`rules::determinism`])
//! and are **cross-file**: a [`workspace::WorkspaceModel`] built from every
//! file in the run resolves imports, type aliases, and struct fields, so
//! `use std::time::Instant as Clock; Clock::now()` fires while a
//! workspace-local `Instant` type does not.
//!
//! Run it as `cargo run -p cordoba-lint -- check` (exit 0 clean, 1 new
//! `deny` findings, 2 usage/I-O error) — the workspace self-check test runs
//! the same pass under `cargo test`. Findings are suppressed with
//! `// cordoba-lint: allow(<rule>)` markers (see [`markers`]), tolerated
//! via a committed baseline (`--baseline`, see [`json`]), or reported as
//! JSON (`--format json`) for the CI gate.
//!
//! The analysis is a hand-rolled tokenizer plus a tolerant item parser
//! ([`parser`]) rather than a full AST walk: the crate must build with
//! **zero dependencies** so the lint gate works in fully-offline
//! environments (no `syn`).

pub mod context;
pub mod diagnostics;
pub mod json;
pub mod lexer;
pub mod markers;
pub mod parser;
pub mod rules;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use context::FileContext;
use diagnostics::{Diagnostic, Severity};
use rules::{Rule, RuleInputs};
use workspace::WorkspaceModel;

/// Directory names never descended into while walking.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "results"];

/// A configured lint run: which rules are active, per-rule severity
/// overrides, and the seed unit-type set.
///
/// A `Linter` is immutable during checking: every entry point takes
/// `&self`, learns `quantity!` declarations into a per-run copy of the
/// unit set, and never carries state from one run into the next — checking
/// the same tree twice through one `Linter` yields identical results.
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
    units: BTreeSet<String>,
    severities: BTreeMap<&'static str, Severity>,
}

impl Default for Linter {
    fn default() -> Self {
        Self::new()
    }
}

impl Linter {
    /// A linter with every registered rule enabled at its default severity.
    #[must_use]
    pub fn new() -> Self {
        Self {
            rules: rules::all_rules(),
            units: rules::default_units(),
            severities: BTreeMap::new(),
        }
    }

    /// Expands family names and validates every resulting rule name.
    fn expand_validated(names: &[&str]) -> Result<Vec<&'static str>, String> {
        let known = rules::rule_names();
        let mut out = Vec::new();
        for name in names.iter().flat_map(|n| rules::expand(n)) {
            match known.iter().find(|k| **k == name) {
                Some(k) => out.push(*k),
                None => {
                    return Err(format!(
                        "unknown rule `{name}` (known: {}; families: determinism)",
                        known.join(", ")
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Restricts the run to the named rules (family names like
    /// `determinism` expand to their members). Unknown names are an error
    /// so typos in CI configs fail loudly.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown rule.
    pub fn restrict_to(&mut self, names: &[&str]) -> Result<(), String> {
        let keep = Self::expand_validated(names)?;
        self.rules.retain(|r| keep.contains(&r.name()));
        Ok(())
    }

    /// Disables the named rules (families expand), keeping the rest.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown rule.
    pub fn skip(&mut self, names: &[&str]) -> Result<(), String> {
        let drop = Self::expand_validated(names)?;
        self.rules.retain(|r| !drop.contains(&r.name()));
        Ok(())
    }

    /// Overrides the severity of the named rules (families expand).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown rule.
    pub fn set_severity(&mut self, names: &[&str], severity: Severity) -> Result<(), String> {
        for name in Self::expand_validated(names)? {
            self.severities.insert(name, severity);
        }
        Ok(())
    }

    /// The severity a rule's findings will carry in this run.
    fn effective_severity(&self, rule: &dyn Rule) -> Severity {
        self.severities
            .get(rule.name())
            .copied()
            .unwrap_or_else(|| rule.severity())
    }

    /// Lints a single file's source under a workspace-relative path. Used by
    /// fixture tests; cross-file resolution sees only this one file.
    #[must_use]
    pub fn check_source(&self, rel: &str, source: &str) -> Vec<Diagnostic> {
        self.check_sources(&[(rel, source)])
    }

    /// Lints a set of in-memory sources as one workspace, so tests can
    /// exercise cross-file resolution (imports, aliases, struct fields)
    /// without touching disk.
    #[must_use]
    pub fn check_sources(&self, files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ctxs: Vec<FileContext> = files
            .iter()
            .map(|(rel, source)| FileContext::new(rel, source))
            .collect();
        self.lint_contexts(&ctxs)
    }

    /// Walks `root` for `.rs` files and lints them all. Equivalent to
    /// [`Linter::run`] with a single root.
    ///
    /// # Errors
    ///
    /// Returns any I/O error encountered while walking or reading files.
    pub fn check_path(&self, root: &Path) -> io::Result<Vec<Diagnostic>> {
        self.run(&[root.to_path_buf()])
    }

    /// Lints every `.rs` file under the given roots as **one** run:
    /// overlapping roots are deduplicated by canonical path, `quantity!`
    /// declarations from any root feed the shared unit set, and the
    /// workspace model spans all files, so cross-file rules see the same
    /// picture regardless of how the paths were spelled.
    ///
    /// # Errors
    ///
    /// Returns any I/O error encountered while walking or reading files.
    pub fn run(&self, roots: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
        let mut files = BTreeSet::new();
        for root in roots {
            let mut collected = Vec::new();
            collect_rs_files(root, &mut collected)?;
            for path in collected {
                files.insert(fs::canonicalize(&path).unwrap_or(path));
            }
        }
        let ws = fs::canonicalize(workspace_root()).unwrap_or_else(|_| workspace_root());
        let mut ctxs = Vec::new();
        for path in &files {
            let source = fs::read_to_string(path)?;
            ctxs.push(FileContext::new(&relative(&ws, path), &source));
        }
        Ok(self.lint_contexts(&ctxs))
    }

    /// The shared core: learn units, build the workspace model, run every
    /// rule over every file, filter suppressions, stamp severities, and
    /// produce sorted, deduplicated findings.
    fn lint_contexts(&self, ctxs: &[FileContext]) -> Vec<Diagnostic> {
        let mut units = self.units.clone();
        for ctx in ctxs {
            if ctx.file_name == "units.rs" {
                units.extend(ctx.declared_quantities());
            }
        }
        let model = WorkspaceModel::build(ctxs);
        let mut diags = Vec::new();
        for ctx in ctxs {
            let inputs = RuleInputs {
                file: ctx,
                units: &units,
                model: &model,
            };
            for rule in &self.rules {
                let severity = self.effective_severity(rule.as_ref());
                for mut d in rule.check(&inputs) {
                    if ctx.markers.is_allowed(d.rule, d.line) {
                        continue;
                    }
                    d.severity = severity;
                    diags.push(d);
                }
            }
        }
        diagnostics::sort(&mut diags);
        diags.dedup();
        diags
    }

    /// Names of the active rules.
    #[must_use]
    pub fn active_rules(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }
}

/// Workspace-relative display path with forward slashes. When `root` is the
/// file itself (single-file check), falls back to the full path.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel = if rel.as_os_str().is_empty() {
        path
    } else {
        rel
    };
    rel.to_string_lossy()
        .replace(std::path::MAIN_SEPARATOR, "/")
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The CORDOBA workspace root, derived from this crate's manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}
