//! `cordoba-lint` — domain-aware static analysis for the CORDOBA workspace.
//!
//! CORDOBA's carbon arithmetic is only trustworthy because it runs on typed
//! physical quantities (`cordoba_carbon::units`); this crate mechanically
//! enforces the conventions the type system cannot, across every `.rs` file
//! in the workspace:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `unit-laundering` | `Quantity::new(x.value() * y.value())` outside `units.rs` |
//! | `no-panic` | `unwrap`/`expect`/`panic!`/`unreachable!` in library code |
//! | `float-eq` | `==`/`!=` against float literals |
//! | `lossy-cast` | bare numeric `as` casts in the carbon/tech kernels |
//! | `raw-constant` | bare literals equal to known physical constants |
//! | `missing-must-use` | public fns returning unit quantities without `#[must_use]` |
//!
//! Run it as `cargo run -p cordoba-lint -- check` (exit 0 clean, 1 with
//! `file:line` diagnostics) — the workspace self-check test runs the same
//! pass under `cargo test`. Findings are suppressed with
//! `// cordoba-lint: allow(<rule>)` markers (see [`markers`]).
//!
//! The analysis is a hand-rolled tokenizer plus per-rule pattern matchers
//! rather than a full AST walk: the crate must build with **zero
//! dependencies** so the lint gate works in fully-offline environments
//! (no `syn`).

pub mod context;
pub mod diagnostics;
pub mod lexer;
pub mod markers;
pub mod rules;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use context::FileContext;
use diagnostics::Diagnostic;
use rules::{Rule, RuleInputs};

/// Directory names never descended into while walking.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "results"];

/// A configured lint run: which rules are active, plus the unit-type set.
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
    units: BTreeSet<String>,
}

impl Default for Linter {
    fn default() -> Self {
        Self::new()
    }
}

impl Linter {
    /// A linter with every registered rule enabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            rules: rules::all_rules(),
            units: rules::default_units(),
        }
    }

    /// Restricts the run to the named rules. Unknown names are an error so
    /// typos in CI configs fail loudly.
    pub fn restrict_to(&mut self, names: &[&str]) -> Result<(), String> {
        for n in names {
            if !rules::rule_names().contains(n) {
                return Err(format!(
                    "unknown rule `{n}` (known: {})",
                    rules::rule_names().join(", ")
                ));
            }
        }
        self.rules.retain(|r| names.contains(&r.name()));
        Ok(())
    }

    /// Disables the named rules, keeping the rest.
    pub fn skip(&mut self, names: &[&str]) -> Result<(), String> {
        for n in names {
            if !rules::rule_names().contains(n) {
                return Err(format!(
                    "unknown rule `{n}` (known: {})",
                    rules::rule_names().join(", ")
                ));
            }
        }
        self.rules.retain(|r| !names.contains(&r.name()));
        Ok(())
    }

    /// Lints a single file's source under a workspace-relative path. Used by
    /// fixture tests and the path-walking entry points.
    #[must_use]
    pub fn check_source(&self, rel: &str, source: &str) -> Vec<Diagnostic> {
        let file = FileContext::new(rel, source);
        let inputs = RuleInputs {
            file: &file,
            units: &self.units,
        };
        let mut diags: Vec<Diagnostic> = self
            .rules
            .iter()
            .flat_map(|rule| rule.check(&inputs))
            .filter(|d| !file.markers.is_allowed(d.rule, d.line))
            .collect();
        diagnostics::sort(&mut diags);
        diags
    }

    /// Walks `root` for `.rs` files and lints them all. Any `quantity!`
    /// declarations found are unioned into the unit set *before* linting, so
    /// newly added quantities are covered without touching the lint crate.
    ///
    /// # Errors
    ///
    /// Returns any I/O error encountered while walking or reading files.
    pub fn check_path(&mut self, root: &Path) -> io::Result<Vec<Diagnostic>> {
        let mut files = Vec::new();
        collect_rs_files(root, &mut files)?;
        files.sort();

        // Pass 1: learn unit types from every units.rs in the tree.
        for path in &files {
            if path.file_name().is_some_and(|n| n == "units.rs") {
                let source = fs::read_to_string(path)?;
                let rel = relative(root, path);
                self.units
                    .extend(FileContext::new(&rel, &source).declared_quantities());
            }
        }

        // Pass 2: lint.
        let mut diags = Vec::new();
        for path in &files {
            let source = fs::read_to_string(path)?;
            diags.extend(self.check_source(&relative(root, path), &source));
        }
        diagnostics::sort(&mut diags);
        Ok(diags)
    }

    /// Names of the active rules.
    #[must_use]
    pub fn active_rules(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }
}

/// Workspace-relative display path with forward slashes. When `root` is the
/// file itself (single-file check), falls back to the full path.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel = if rel.as_os_str().is_empty() {
        path
    } else {
        rel
    };
    rel.to_string_lossy()
        .replace(std::path::MAIN_SEPARATOR, "/")
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The CORDOBA workspace root, derived from this crate's manifest directory.
#[must_use]
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}
