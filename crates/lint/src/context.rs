//! Per-file lint context: tokens, file classification, test regions, and
//! suppression markers, computed once and shared by every rule.

use std::collections::BTreeSet;

use crate::lexer::{tokenize, Token, TokenKind};
use crate::markers::Markers;
use crate::parser::{parse_items, Item};

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` — library/binary source of a workspace crate.
    CrateSrc(String),
    /// Integration tests (`tests/**` at root or under a crate).
    Test,
    /// Benchmark sources (`benches/**`).
    Bench,
    /// Example programs (`examples/**`).
    Example,
    /// Anything else (including fixture snippets checked explicitly):
    /// every rule applies, so stand-alone snippets are fully linted.
    Unknown,
}

/// Everything a rule needs to know about one source file.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path (used in diagnostics).
    pub rel: String,
    /// Bare file name (`units.rs`).
    pub file_name: String,
    /// Classification from the relative path.
    pub kind: FileKind,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// Parsed item tree (see [`crate::parser`]); structure-aware rules and
    /// the workspace model are built from this.
    pub items: Vec<Item>,
    /// Suppression markers parsed from raw source.
    pub markers: Markers,
    /// Half-open token-index ranges covered by `#[cfg(test)]` / `#[test]`
    /// items; library-only rules skip these.
    pub test_regions: Vec<(usize, usize)>,
}

impl FileContext {
    /// Builds a context from a workspace-relative path and file contents.
    #[must_use]
    pub fn new(rel: &str, source: &str) -> Self {
        let tokens = tokenize(source);
        let test_regions = find_test_regions(&tokens);
        let items = parse_items(&tokens);
        Self {
            rel: rel.to_string(),
            file_name: rel.rsplit('/').next().unwrap_or(rel).to_string(),
            kind: classify(rel),
            tokens,
            items,
            markers: Markers::parse(source),
            test_regions,
        }
    }

    /// `true` when token index `i` is inside test-only code.
    #[must_use]
    pub fn in_test_code(&self, i: usize) -> bool {
        self.kind == FileKind::Test || self.test_regions.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }

    /// Extracts the names declared by `quantity!( ... Name, "unit" )`
    /// invocations, so the unit-type set tracks `units.rs` automatically.
    #[must_use]
    pub fn declared_quantities(&self) -> BTreeSet<String> {
        let mut units = BTreeSet::new();
        let t = &self.tokens;
        for i in 0..t.len() {
            if t[i].is_ident("quantity")
                && t.get(i + 1).is_some_and(|n| n.is_punct("!"))
                && t.get(i + 2).is_some_and(|n| n.is_open('('))
            {
                // First identifier inside the invocation that is not part of
                // a doc attribute is the type name.
                let mut j = i + 3;
                let mut depth = 1;
                while j < t.len() && depth > 0 {
                    if t[j].is_open('(') {
                        depth += 1;
                    } else if t[j].is_close(')') {
                        depth -= 1;
                    } else if t[j].is_punct("#") && t.get(j + 1).is_some_and(|n| n.is_open('[')) {
                        // Skip `#[doc = "..."]` attributes.
                        j += 1;
                        let mut bdepth = 0;
                        while j < t.len() {
                            if t[j].is_open('[') {
                                bdepth += 1;
                            } else if t[j].is_close(']') {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if t[j].kind == TokenKind::Ident {
                        units.insert(t[j].text.clone());
                        break;
                    }
                    j += 1;
                }
            }
        }
        units
    }
}

fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"benches") {
        return FileKind::Bench;
    }
    if parts.contains(&"tests") {
        return FileKind::Test;
    }
    if parts.contains(&"examples") {
        return FileKind::Example;
    }
    if parts.len() >= 3 && parts[0] == "crates" && parts[2] == "src" {
        return FileKind::CrateSrc(parts[1].to_string());
    }
    FileKind::Unknown
}

/// Finds token ranges belonging to `#[cfg(test)]` or `#[test]` items.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_open('[')) {
            // Collect the attribute's tokens.
            let mut j = i + 1;
            let mut depth = 0;
            let attr_start = i + 2;
            while j < tokens.len() {
                if tokens[j].is_open('[') {
                    depth += 1;
                } else if tokens[j].is_close(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let attr = &tokens[attr_start..j.min(tokens.len())];
            if is_test_attribute(attr) {
                // Skip any further attributes, then find the item's body.
                let mut k = j + 1;
                while k + 1 < tokens.len() && tokens[k].is_punct("#") && tokens[k + 1].is_open('[')
                {
                    let mut bdepth = 0;
                    k += 1;
                    while k < tokens.len() {
                        if tokens[k].is_open('[') {
                            bdepth += 1;
                        } else if tokens[k].is_close(']') {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Scan to the item's opening brace (or `;` for non-block
                // items such as `#[cfg(test)] use ...;`).
                let mut body_start = None;
                while k < tokens.len() {
                    if tokens[k].is_open('{') {
                        body_start = Some(k);
                        break;
                    }
                    if tokens[k].is_punct(";") {
                        break;
                    }
                    k += 1;
                }
                if let Some(open) = body_start {
                    let mut bdepth = 0;
                    let mut end = open;
                    while end < tokens.len() {
                        if tokens[end].is_open('{') {
                            bdepth += 1;
                        } else if tokens[end].is_close('}') {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        end += 1;
                    }
                    regions.push((i, (end + 1).min(tokens.len())));
                    i = end + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// `true` for `#[test]` and `#[cfg(test)]` (but not `#[cfg(not(test))]`).
fn is_test_attribute(attr: &[Token]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    attr.len() == 4
        && attr[0].is_ident("cfg")
        && attr[1].is_open('(')
        && attr[2].is_ident("test")
        && attr[3].is_close(')')
}

#[cfg(test)]
mod tests {
    use super::{classify, FileContext, FileKind};

    #[test]
    fn classification_follows_workspace_layout() {
        assert_eq!(
            classify("crates/carbon/src/units.rs"),
            FileKind::CrateSrc("carbon".into())
        );
        assert_eq!(classify("tests/integration_dse.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/benches/sim_perf.rs"),
            FileKind::Bench
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("snippet.rs"), FileKind::Unknown);
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn lib() { }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        let unwrap_at = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(ctx.in_test_code(unwrap_at));
        let lib_at = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("lib"))
            .expect("lib token");
        assert!(!ctx.in_test_code(lib_at));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        let unwrap_at = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(!ctx.in_test_code(unwrap_at));
    }

    #[test]
    fn quantity_names_are_extracted() {
        let src =
            "quantity!(\n    /// Docs.\n    Seconds,\n    \"s\"\n);\nquantity!(Watts, \"W\");\n";
        let ctx = FileContext::new("crates/carbon/src/units.rs", src);
        let units = ctx.declared_quantities();
        assert!(units.contains("Seconds"));
        assert!(units.contains("Watts"));
    }
}
