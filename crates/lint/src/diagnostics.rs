//! Diagnostic type and rendering.

use core::fmt;

/// One finding produced by a lint rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Name of the rule that fired (e.g. `unit-laundering`).
    pub rule: &'static str,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    #[must_use]
    pub fn new(file: &str, line: u32, rule: &'static str, message: impl Into<String>) -> Self {
        Self {
            file: file.to_string(),
            line,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts diagnostics by file then line then rule for stable output.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::Diagnostic;

    #[test]
    fn renders_as_file_line_rule_message() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, "float-eq", "exact comparison");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: [float-eq] exact comparison"
        );
    }
}
