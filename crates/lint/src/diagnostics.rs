//! Diagnostic type, severity levels, and rendering.

use core::fmt;

/// How a finding affects the exit code.
///
/// `deny` findings fail the run (exit 1); `warn` findings are printed and
/// counted but do not fail. Every rule declares a default
/// ([`crate::rules::Rule::severity`]); the CLI can override per rule with
/// `--deny`/`--warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, counted, never fails the run.
    Warn,
    /// Fails the run unless baselined or suppressed.
    Deny,
}

impl Severity {
    /// Stable lowercase name (`deny` / `warn`) used in output and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Warn => "warn",
            Self::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding produced by a lint rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Name of the rule that fired (e.g. `unit-laundering`).
    pub rule: &'static str,
    /// Effective severity (rule default, possibly overridden by the CLI).
    pub severity: Severity,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the rule's default `deny` severity; the
    /// driver stamps the effective severity before reporting.
    #[must_use]
    pub fn new(file: &str, line: u32, rule: &'static str, message: impl Into<String>) -> Self {
        Self {
            file: file.to_string(),
            line,
            rule,
            severity: Severity::Deny,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Sorts diagnostics by file then line then rule for stable output.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

#[cfg(test)]
mod tests {
    use super::{Diagnostic, Severity};

    #[test]
    fn renders_as_file_line_severity_rule_message() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, "float-eq", "exact comparison");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: deny [float-eq] exact comparison"
        );
        let mut w = d;
        w.severity = Severity::Warn;
        assert!(w.to_string().contains("warn [float-eq]"));
    }
}
