//! Execution supervision for long-running parallel work.
//!
//! A [`Supervisor`] is a cheap, cloneable handle combining three concerns
//! that every long-running CORDOBA pipeline (design-space sweeps, β-solves,
//! Monte Carlo runs, event simulation) needs but none owned until now:
//!
//! * **cooperative cancellation** — [`Supervisor::cancel`] requests a stop;
//!   workers observe it at the next item boundary via
//!   [`Supervisor::should_stop`];
//! * **deadline budget** — [`Supervisor::with_deadline`] arms a monotonic
//!   wall-clock budget checked at the same boundaries;
//! * **progress accounting** — completed/panicked unit counters, surfaced
//!   through [`Supervisor::progress`] and attached to the supervision
//!   events recorded through `cordoba-obs`.
//!
//! [`par_map_supervised_with`] is the supervised sibling of
//! [`crate::par_map_indexed_with`]: same contiguous chunking, same
//! input-order merge, plus per-item panic isolation
//! (`std::panic::catch_unwind`) and cooperative stop checks before every
//! item. It returns a [`SupervisedMap`] recording, per input index, whether
//! the item completed, panicked, or was never attempted.
//!
//! # Determinism contract
//!
//! Supervision never changes *values*: an item that completes produces the
//! exact bits the unsupervised map would have produced, because the closure
//! runs unchanged and results are merged in input order. What a stop makes
//! nondeterministic is only *which subset* of items completed before the
//! cut (worker interleaving decides that). Every consumer in the workspace
//! therefore treats the outcome vector as a partial result keyed by input
//! index: re-running only the `Skipped`/`Panicked` slots and merging by
//! index reproduces the uninterrupted output bit-for-bit at any thread
//! count — the invariant the `cordoba-robust` property suite pins.
//!
//! [`Supervisor::tripping_after`] stops after a fixed number of completed
//! units instead of after elapsed time, which is what the fault-injection
//! suite uses to interrupt runs at seed-chosen points reproducibly.
//
// cordoba-lint: allow-file(atomic-ordering) — the supervisor's cells are a
// sticky cancellation flag and monotonic progress tallies; no data is
// published through them (results travel through the scoped-join), so
// Relaxed is sufficient and cannot affect mapped values.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a supervised run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// [`Supervisor::cancel`] was called (or a [`Supervisor::tripping_after`]
    /// threshold was reached).
    Cancelled,
    /// The monotonic deadline budget was exhausted.
    DeadlineExceeded,
}

impl StopReason {
    /// Stable lowercase token used in checkpoint files and CLI output.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Self::Cancelled => "cancelled",
            Self::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Parses the token written by [`StopReason::token`].
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "cancelled" => Some(Self::Cancelled),
            "deadline-exceeded" => Some(Self::DeadlineExceeded),
            _ => None,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Progress snapshot of a supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Progress {
    /// Work units that completed normally.
    pub completed: u64,
    /// Work units whose closure panicked (isolated, not aborted).
    pub panicked: u64,
}

impl Progress {
    /// Units attempted: completed plus panicked.
    #[must_use]
    pub fn attempted(&self) -> u64 {
        self.completed + self.panicked
    }
}

/// Shared state behind the cloneable handle.
#[derive(Debug)]
struct Shared {
    /// Sticky cancellation flag; set by [`Supervisor::cancel`] and latched
    /// when a trip threshold fires so the reason stays stable.
    cancelled: AtomicBool,
    /// Stop after this many attempted units; `u64::MAX` disables the trip.
    trip_at: u64,
    /// Deadline armed at construction; `None` means unbounded.
    deadline: Option<(Instant, Duration)>,
    /// Work units completed normally.
    completed: AtomicU64,
    /// Work units that panicked and were quarantined.
    panicked: AtomicU64,
}

/// Cooperative cancellation token + deadline budget + progress accounting.
///
/// Cloning is cheap and shares all state, so the same handle can be held by
/// the caller (to cancel) and threaded through nested pipelines (to observe
/// the stop and account progress).
///
/// ```
/// use cordoba_par::supervise::{StopReason, Supervisor};
///
/// let sup = Supervisor::unbounded();
/// assert_eq!(sup.should_stop(), None);
/// sup.cancel();
/// assert_eq!(sup.should_stop(), Some(StopReason::Cancelled));
/// ```
#[derive(Debug, Clone)]
pub struct Supervisor {
    shared: Arc<Shared>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl Supervisor {
    fn with_limits(trip_at: u64, deadline: Option<(Instant, Duration)>) -> Self {
        Self {
            shared: Arc::new(Shared {
                cancelled: AtomicBool::new(false),
                trip_at,
                deadline,
                completed: AtomicU64::new(0),
                panicked: AtomicU64::new(0),
            }),
        }
    }

    /// A supervisor that never stops a run unless [`cancel`](Self::cancel)
    /// is called. The no-deadline overhead is one relaxed flag load per
    /// item.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::with_limits(u64::MAX, None)
    }

    /// Arms a monotonic deadline: `should_stop` reports
    /// [`StopReason::DeadlineExceeded`] once `budget` has elapsed since
    /// this call.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        // The budget is a robustness control, never an input to computed
        // values: items either run to completion (bit-identical to the
        // unsupervised map) or are skipped and recomputed on resume.
        // cordoba-lint: allow(wall-clock) — deadline anchor; cannot reach results
        Self::with_limits(u64::MAX, Some((Instant::now(), budget)))
    }

    /// A supervisor that auto-cancels once `units` work units have been
    /// attempted. This is the deterministic interruption mechanism used by
    /// the fault-injection suite: unlike a wall-clock deadline it fires at
    /// a reproducible point (exactly reproducible at one thread; at a
    /// seed-independent *count* of attempted units otherwise).
    #[must_use]
    pub fn tripping_after(units: u64) -> Self {
        Self::with_limits(units, None)
    }

    /// Requests a cooperative stop; sticky.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](Self::cancel) was called or a trip threshold
    /// latched.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::Relaxed)
    }

    /// The reason this run should stop now, if any. Cancellation (explicit
    /// or tripped) takes precedence over the deadline so the reported
    /// reason is stable once latched.
    #[must_use]
    pub fn should_stop(&self) -> Option<StopReason> {
        if self.shared.cancelled.load(Ordering::Relaxed) {
            return Some(StopReason::Cancelled);
        }
        // `u64::MAX` disables the trip; skip the two progress-counter
        // loads entirely so untripped supervision costs one flag load.
        if self.shared.trip_at != u64::MAX && self.progress().attempted() >= self.shared.trip_at {
            // Latch so the reason survives later progress and clones.
            self.cancel();
            return Some(StopReason::Cancelled);
        }
        if let Some((start, budget)) = self.shared.deadline {
            if start.elapsed() >= budget {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        None
    }

    /// Accounts `n` successfully completed work units.
    pub fn note_completed(&self, n: u64) {
        self.shared.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Accounts one panicked (quarantined) work unit.
    pub fn note_panicked(&self) {
        self.shared.panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// Progress so far across everything this handle supervised.
    #[must_use]
    pub fn progress(&self) -> Progress {
        Progress {
            completed: self.shared.completed.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
        }
    }

    /// Records the stop as a typed `cordoba-obs` event (with the completed
    /// count as payload) and returns it unchanged. Consumers call this once
    /// per interrupted pipeline stage.
    #[must_use]
    pub fn record_stop(&self, reason: StopReason) -> StopReason {
        let completed = self.progress().completed;
        let event = match reason {
            StopReason::Cancelled => cordoba_obs::Event::Cancelled { completed },
            StopReason::DeadlineExceeded => cordoba_obs::Event::DeadlineExceeded { completed },
        };
        cordoba_obs::record(&event);
        reason
    }
}

/// Per-item outcome of a supervised map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<R> {
    /// The closure completed; the value is bit-identical to what the
    /// unsupervised map would have produced for this index.
    Done(R),
    /// The closure panicked; the payload message is quarantined here and
    /// the process survives.
    Panicked(String),
    /// The run stopped before this item was attempted.
    Skipped,
}

impl<R> Outcome<R> {
    /// The completed value, if any.
    pub fn done(&self) -> Option<&R> {
        match self {
            Self::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Result of [`par_map_supervised_with`]: one [`Outcome`] per input index
/// plus the stop reason when the run was cut short.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedMap<R> {
    /// One outcome per input item, in input order.
    pub outcomes: Vec<Outcome<R>>,
    /// `Some` when at least one item was skipped because the supervisor
    /// stopped the run; `None` when every item was attempted.
    pub stop: Option<StopReason>,
}

impl<R> SupervisedMap<R> {
    /// `true` when every item was attempted (completed or panicked).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.stop.is_none()
    }

    /// Indices whose items were not attempted, in input order.
    #[must_use]
    pub fn skipped_indices(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| matches!(o, Outcome::Skipped).then_some(i))
            .collect()
    }
}

/// Renders a panic payload into a stable, storable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Maps one chunk front to back with stop checks and per-item panic
/// isolation; shared by the sequential and parallel paths so supervision
/// semantics never depend on input size or thread count.
fn supervised_chunk<T, R, F>(base: usize, chunk: &[T], sup: &Supervisor, f: &F) -> Vec<Outcome<R>>
where
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(chunk.len());
    for (offset, item) in chunk.iter().enumerate() {
        if sup.should_stop().is_some() {
            break;
        }
        // Per *item*, not per chunk: chunk boundaries move with the thread
        // count, so quarantining whole chunks would make the set of
        // salvaged results thread-count-dependent. AssertUnwindSafe is
        // sound because a panicked item contributes nothing but its
        // message — no state touched by `f` for that item is reused.
        match catch_unwind(AssertUnwindSafe(|| f(base + offset, item))) {
            Ok(value) => {
                sup.note_completed(1);
                out.push(Outcome::Done(value));
            }
            Err(payload) => {
                sup.note_panicked();
                cordoba_obs::record(&cordoba_obs::Event::ChunkPanic);
                out.push(Outcome::Panicked(panic_message(payload.as_ref())));
            }
        }
    }
    out.resize_with(chunk.len(), || Outcome::Skipped);
    out
}

/// Supervised sibling of [`crate::par_map_indexed`]: cooperative stop
/// checks before every item, per-item panic isolation, input-order merge.
/// Uses [`crate::effective_threads`] workers.
pub fn par_map_supervised<T, R, F>(items: &[T], sup: &Supervisor, f: F) -> SupervisedMap<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_supervised_with(items, crate::effective_threads(), sup, f)
}

/// [`par_map_supervised`] with an explicit thread count (1 = sequential).
///
/// Chunking and merge order are identical to
/// [`crate::par_map_indexed_with`], so for every index whose outcome is
/// [`Outcome::Done`] the value is bit-identical to the unsupervised map's
/// at any thread count. When the supervisor stops the run, the stop is
/// recorded once as a supervision event and returned in
/// [`SupervisedMap::stop`].
pub fn par_map_supervised_with<T, R, F>(
    items: &[T],
    threads: usize,
    sup: &Supervisor,
    f: F,
) -> SupervisedMap<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_supervised(items, crate::length_workers(items.len(), threads), sup, f)
}

/// [`par_map_supervised_with`] steered by a [`crate::CostHint`] instead of
/// the length-only cutoff (see [`crate::par_map_indexed_hinted`]): small
/// estimated workloads run on the calling thread, larger ones use only as
/// many workers as the estimated work pays for. Chunking and merge order
/// are otherwise identical, so completed outcomes stay bit-identical to the
/// unsupervised map's at any thread count.
pub fn par_map_supervised_hinted<T, R, F>(
    items: &[T],
    threads: usize,
    hint: crate::CostHint,
    sup: &Supervisor,
    f: F,
) -> SupervisedMap<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_supervised(items, hint.workers(items.len(), threads), sup, f)
}

/// Supervised chunked map over exactly `workers` contiguous chunks (1 = the
/// sequential path); the shared engine behind both supervised entry points.
fn run_supervised<T, R, F>(items: &[T], workers: usize, sup: &Supervisor, f: F) -> SupervisedMap<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let outcomes = if workers <= 1 {
        supervised_chunk(0, items, sup, &f)
    } else {
        let chunk_len = items.len().div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .enumerate()
                .map(|(chunk_idx, chunk)| {
                    let base = chunk_idx * chunk_len;
                    let sup = sup.clone();
                    scope.spawn(move || {
                        let _span = cordoba_obs::span_with(
                            "par/supervised_chunk",
                            "items",
                            u64::try_from(chunk.len()).unwrap_or(u64::MAX),
                        );
                        supervised_chunk(base, chunk, &sup, f)
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    // Workers isolate item panics, so a join failure means
                    // a panic outside `f` (e.g. in obs plumbing) — re-raise
                    // it like the unsupervised map does.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    };
    let any_skipped = outcomes.iter().any(|o| matches!(o, Outcome::Skipped));
    let stop = if any_skipped {
        // A skip implies a latched cancel, a tripped threshold, or an
        // elapsed deadline — all sticky, so this re-check agrees with what
        // the worker saw. The fallback cannot fire but keeps this total.
        Some(sup.record_stop(sup.should_stop().unwrap_or(StopReason::Cancelled)))
    } else {
        None
    };
    SupervisedMap { outcomes, stop }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Silences the default panic-hook chatter for payloads carrying this
    /// marker; intentional panics in these tests would otherwise spam the
    /// test log.
    const QUIET: &str = "[quiet-test-panic]";

    fn install_quiet_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let quiet = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(QUIET))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.contains(QUIET));
                if !quiet {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn unbounded_supervisor_matches_unsupervised_map() {
        let items: Vec<u64> = (0..600).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(37) ^ 11).collect();
        for threads in [1, 2, 5, 64] {
            let sup = Supervisor::unbounded();
            let run =
                par_map_supervised_with(&items, threads, &sup, |_, x| x.wrapping_mul(37) ^ 11);
            assert!(run.is_complete(), "threads = {threads}");
            let got: Vec<u64> = run
                .outcomes
                .into_iter()
                .map(|o| match o {
                    Outcome::Done(v) => v,
                    other => panic!("unexpected outcome {other:?}"),
                })
                .collect();
            assert_eq!(got, expected, "threads = {threads}");
            assert_eq!(sup.progress().completed, items.len() as u64);
        }
    }

    #[test]
    fn cancellation_skips_remaining_items() {
        let items: Vec<u32> = (0..100).collect();
        let sup = Supervisor::unbounded();
        sup.cancel();
        let run = par_map_supervised_with(&items, 4, &sup, |_, x| *x);
        assert_eq!(run.stop, Some(StopReason::Cancelled));
        assert_eq!(run.skipped_indices().len(), items.len());
    }

    #[test]
    fn trip_after_stops_at_exact_point_sequentially() {
        let items: Vec<u32> = (0..50).collect();
        let sup = Supervisor::tripping_after(17);
        let run = par_map_supervised_with(&items, 1, &sup, |_, x| x * 2);
        assert_eq!(run.stop, Some(StopReason::Cancelled));
        let done = run.outcomes.iter().filter(|o| o.done().is_some()).count();
        assert_eq!(done, 17);
        assert_eq!(run.skipped_indices(), (17..50).collect::<Vec<_>>());
        assert_eq!(sup.progress().completed, 17);
    }

    #[test]
    fn zero_deadline_skips_everything() {
        let items: Vec<u32> = (0..40).collect();
        let sup = Supervisor::with_deadline(Duration::ZERO);
        let run = par_map_supervised_with(&items, 4, &sup, |_, x| *x);
        assert_eq!(run.stop, Some(StopReason::DeadlineExceeded));
        assert_eq!(run.skipped_indices().len(), items.len());
        assert_eq!(sup.progress().completed, 0);
    }

    #[test]
    fn panics_are_quarantined_per_item_in_input_order() {
        install_quiet_hook();
        let items: Vec<u32> = (0..200).collect();
        for threads in [1, 3, 8] {
            let sup = Supervisor::unbounded();
            let run = par_map_supervised_with(&items, threads, &sup, |_, x| {
                assert!(x % 61 != 13, "{QUIET} poisoned item {x}");
                x * 3
            });
            assert!(run.is_complete());
            for (i, outcome) in run.outcomes.iter().enumerate() {
                if i % 61 == 13 {
                    match outcome {
                        Outcome::Panicked(msg) => assert!(msg.contains("poisoned item")),
                        other => panic!("index {i}: expected panic, got {other:?}"),
                    }
                } else {
                    assert_eq!(outcome.done(), Some(&(i as u32 * 3)), "index {i}");
                }
            }
            assert_eq!(sup.progress().panicked, 4); // 13, 74, 135, 196
        }
    }

    #[test]
    fn hinted_supervised_map_matches_unhinted_outcomes() {
        let items: Vec<u64> = (0..400).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(41) ^ 5).collect();
        for hint_ns in [1, 2_000] {
            let sup = Supervisor::unbounded();
            let run = par_map_supervised_hinted(
                &items,
                4,
                crate::CostHint::per_item_ns(hint_ns),
                &sup,
                |_, x| x.wrapping_mul(41) ^ 5,
            );
            assert!(run.is_complete(), "hint = {hint_ns}");
            let got: Vec<u64> = run
                .outcomes
                .into_iter()
                .map(|o| match o {
                    Outcome::Done(v) => v,
                    other => panic!("unexpected outcome {other:?}"),
                })
                .collect();
            assert_eq!(got, expected, "hint = {hint_ns}");
        }
        // A tripping supervisor still stops a hinted sequential run at the
        // exact unit count.
        let sup = Supervisor::tripping_after(9);
        let run =
            par_map_supervised_hinted(&items, 8, crate::CostHint::per_item_ns(1), &sup, |_, x| *x);
        assert_eq!(run.stop, Some(StopReason::Cancelled));
        assert_eq!(run.skipped_indices(), (9..400).collect::<Vec<_>>());
    }

    #[test]
    fn stop_reason_tokens_round_trip() {
        for reason in [StopReason::Cancelled, StopReason::DeadlineExceeded] {
            assert_eq!(StopReason::from_token(reason.token()), Some(reason));
            assert_eq!(format!("{reason}"), reason.token());
        }
        assert_eq!(StopReason::from_token("nonsense"), None);
    }
}
