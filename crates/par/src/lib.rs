//! Deterministic data parallelism for CORDOBA's analytical sweeps.
//!
//! Every hot loop in the framework — design-space characterization, tCDP
//! grids over operational time, β-transition solving, Monte Carlo
//! uncertainty sampling — is a pure map over independent items. This crate
//! parallelizes exactly that shape with **zero external dependencies**
//! (`std::thread::scope` + `std::thread::available_parallelism`) under a
//! strict determinism contract:
//!
//! * **Order-preserving**: [`par_map`] returns results in input order; for
//!   a pure closure the output `Vec` is *byte-identical* to
//!   `items.iter().map(f).collect()` at every thread count.
//! * **Sequential fallback**: inputs shorter than [`MIN_PARALLEL_LEN`] (or
//!   an effective thread count of 1) run inline on the calling thread with
//!   no spawn overhead.
//! * **Panic-safe**: a panicking worker is re-raised on the calling thread
//!   via [`std::panic::resume_unwind`], so panics neither deadlock the
//!   scope nor change observable behavior versus the sequential path.
//!   Fallible work should instead return `Result` and use [`try_par_map`],
//!   which preserves the sequential "first error in input order" contract.
//! * **Supervisable**: [`par_map_supervised`] threads a
//!   [`supervise::Supervisor`] (cooperative cancellation + deadline budget)
//!   through the same chunked map and isolates per-item panics instead of
//!   re-raising them — the substrate for the workspace's checkpoint/resume
//!   pipelines (see [`supervise`]).
//!
//! # Thread-count resolution
//!
//! Explicit `*_with` variants take a thread count directly. The plain
//! variants consult the process-wide setting ([`set_threads`], wired to the
//! CLI's `--threads N`) and fall back to
//! [`std::thread::available_parallelism`]. A count of 1 is exactly the
//! sequential path.
//!
//! # Examples
//!
//! ```
//! let squares = cordoba_par::par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let sums = cordoba_par::par_map_indexed(&["a", "bb"], |i, s| s.len() + i);
//! assert_eq!(sums, vec![1, 3]);
//!
//! let parsed: Result<Vec<i32>, _> =
//!     cordoba_par::try_par_map(&["1", "2"], |s| s.parse::<i32>());
//! assert_eq!(parsed.unwrap(), vec![1, 2]);
//! ```

pub mod supervise;

pub use supervise::{
    par_map_supervised, par_map_supervised_hinted, par_map_supervised_with, Outcome, StopReason,
    SupervisedMap, Supervisor,
};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs shorter than this run sequentially even when more threads are
/// available: spawn/join overhead (~10 µs per thread) dwarfs per-item work
/// for tiny sweeps, and the output is identical either way.
pub const MIN_PARALLEL_LEN: usize = 16;

/// Caller-supplied per-item cost estimate steering the `_hinted` map
/// variants.
///
/// The length-only [`MIN_PARALLEL_LEN`] cutoff cannot tell a 121-item sweep
/// of microsecond work (where spawning threads *loses* time) from 121 items
/// of millisecond work (where it pays). A `CostHint` replaces the length
/// cutoff with a work-based one: a map stays on the calling thread until
/// its estimated total work reaches [`CostHint::MIN_PARALLEL_WORK_NS`], and
/// beyond that it uses only as many workers as keep each chunk above
/// [`CostHint::TARGET_CHUNK_NS`] of estimated work, so spawn/join overhead
/// (~10 µs per thread) stays a small fraction of every chunk.
///
/// The hint is a pure scheduling knob: every map in this crate is
/// order-preserving, so results are bit-identical at any worker count and a
/// wrong estimate can only cost wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostHint {
    ns_per_item: u64,
}

impl CostHint {
    /// Estimated total work below which a hinted map runs on the calling
    /// thread: ~200 µs of work saves at most ~100 µs by splitting in two,
    /// which barely clears the spawn/join cost.
    pub const MIN_PARALLEL_WORK_NS: u64 = 200_000;

    /// Estimated work each chunk should carry when a hinted map does go
    /// parallel, keeping per-thread spawn overhead around the percent
    /// level.
    pub const TARGET_CHUNK_NS: u64 = 100_000;

    /// A hint of `ns` estimated nanoseconds per mapped item (0 is treated
    /// as 1).
    #[must_use]
    pub const fn per_item_ns(ns: u64) -> Self {
        Self {
            ns_per_item: if ns == 0 { 1 } else { ns },
        }
    }

    /// The estimated per-item cost in nanoseconds.
    #[must_use]
    pub const fn ns_per_item(self) -> u64 {
        self.ns_per_item
    }

    /// Worker count for a map of `len` items with `threads` available:
    /// 1 while the estimated total work is under
    /// [`Self::MIN_PARALLEL_WORK_NS`], otherwise capped so each chunk
    /// carries at least [`Self::TARGET_CHUNK_NS`] of estimated work.
    #[must_use]
    pub fn workers(self, len: usize, threads: usize) -> usize {
        let threads = threads.clamp(1, len.max(1));
        if threads == 1 {
            return 1;
        }
        let total_ns = self.ns_per_item.saturating_mul(len as u64);
        if total_ns < Self::MIN_PARALLEL_WORK_NS {
            return 1;
        }
        let paying = usize::try_from(total_ns / Self::TARGET_CHUNK_NS).unwrap_or(usize::MAX);
        threads.min(paying)
    }
}

/// Process-wide thread-count override; 0 means "auto" (all cores).
///
/// Thread count is a pure performance knob: every map in this crate is
/// order-preserving, so results are bit-identical at any worker count and
/// these statics can never reach a computed value. Relaxed suffices
/// because each is a single word with no data published through it.
// cordoba-lint: allow-file(atomic-ordering) — single-word config/memo cells, no cross-thread data handoff
// cordoba-lint: allow(global-state) — perf-only knob, cannot affect results (maps are order-preserving)
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Memoized [`std::thread::available_parallelism`]; 0 means "not yet
/// queried". The std call re-reads cgroup quota files on Linux (tens of
/// microseconds), which would dominate small sweeps if paid per map.
// cordoba-lint: allow(global-state) — memoized hardware probe, perf-only; cannot affect results
static AUTO_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the process-wide worker-thread count used by the non-`_with`
/// entry points. `None` restores the default (all available cores).
///
/// The CLI's `--threads N` flag calls this once at startup. Because every
/// map is order-preserving, changing the count never changes results —
/// only wall-clock time.
pub fn set_threads(threads: Option<NonZeroUsize>) {
    CONFIGURED_THREADS.store(threads.map_or(0, NonZeroUsize::get), Ordering::Relaxed);
}

/// The explicit override installed by [`set_threads`], if any.
#[must_use]
pub fn configured_threads() -> Option<NonZeroUsize> {
    NonZeroUsize::new(CONFIGURED_THREADS.load(Ordering::Relaxed))
}

/// The worker-thread count the non-`_with` entry points will use: the
/// [`set_threads`] override if present, otherwise
/// [`std::thread::available_parallelism`], otherwise 1.
#[must_use]
pub fn effective_threads() -> usize {
    match configured_threads() {
        Some(n) => n.get(),
        None => match AUTO_THREADS.load(Ordering::Relaxed) {
            0 => {
                let auto = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
                AUTO_THREADS.store(auto, Ordering::Relaxed);
                auto
            }
            cached => cached,
        },
    }
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` for any pure `f`; uses
/// [`effective_threads`] workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_with(items, effective_threads(), |_, item| f(item))
}

/// [`par_map`] with an explicit thread count (1 = sequential).
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_with(items, threads, |_, item| f(item))
}

/// Maps `f(index, item)` over `items` in parallel, preserving input order.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_with(items, effective_threads(), f)
}

/// [`par_map_indexed`] with an explicit thread count (1 = sequential).
///
/// The input is split into at most `threads` contiguous chunks; each worker
/// maps its chunk front to back and the chunk results are concatenated in
/// chunk order, so the output order (and, for a pure `f`, every bit of the
/// output) is independent of the thread count.
pub fn par_map_indexed_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    chunked_map(items, length_workers(items.len(), threads), f)
}

/// [`par_map_indexed_with`] steered by a [`CostHint`] instead of the
/// length-only [`MIN_PARALLEL_LEN`] cutoff: the map stays sequential until
/// the estimated total work pays for spawning, and then uses only as many
/// workers as keep each chunk's work above the spawn cost. Output is
/// bit-identical to [`par_map_indexed_with`] for any pure `f`.
pub fn par_map_indexed_hinted<T, R, F>(items: &[T], threads: usize, hint: CostHint, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    chunked_map(items, hint.workers(items.len(), threads), f)
}

/// [`try_par_map_with`] steered by a [`CostHint`] (see
/// [`par_map_indexed_hinted`]), with the closure also receiving the item
/// index.
///
/// # Errors
///
/// Returns the error produced by the earliest (by input index) failing
/// invocation of `f`.
pub fn try_par_map_indexed_hinted<T, R, E, F>(
    items: &[T],
    threads: usize,
    hint: CostHint,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map_indexed_hinted(items, threads, hint, f)
        .into_iter()
        .collect()
}

/// The pre-`CostHint` worker-count rule: requested threads, except that
/// short inputs run sequentially.
pub(crate) fn length_workers(len: usize, threads: usize) -> usize {
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 || len < MIN_PARALLEL_LEN {
        1
    } else {
        threads
    }
}

/// Order-preserving chunked map over exactly `workers` contiguous chunks
/// (1 = the sequential path); the shared engine behind every unsupervised
/// map variant.
fn chunked_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let base = chunk_idx * chunk_len;
                scope.spawn(move || {
                    // Observability side channel only: the span never
                    // touches the mapped values, so results stay
                    // bit-identical with tracing on or off.
                    let _span = cordoba_obs::span_with(
                        "par/chunk",
                        "items",
                        u64::try_from(chunk.len()).unwrap_or(u64::MAX),
                    );
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(offset, item)| f(base + offset, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                // Re-raise a worker panic on the caller, matching the
                // sequential path's behavior.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Fallible parallel map preserving the sequential error contract: on
/// failure, returns the error of the *first* failing item in input order.
///
/// Unlike a sequential `try` loop this evaluates every item before
/// reporting, but the returned value is identical.
///
/// # Errors
///
/// Returns the error produced by the earliest (by input index) failing
/// invocation of `f`.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    try_par_map_with(items, effective_threads(), f)
}

/// [`try_par_map`] with an explicit thread count (1 = sequential).
///
/// # Errors
///
/// Returns the error produced by the earliest (by input index) failing
/// invocation of `f`.
pub fn try_par_map_with<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    par_map_with(items, threads, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        for threads in [1, 2, 3, 4, 7, 64, 1000, 5000] {
            let got = par_map_indexed_with(&items, threads, |i, x| {
                assert_eq!(*x, i as u64);
                x.wrapping_mul(31) ^ 7
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map_with(&[5u32], 8, |x| x + 1), vec![6]);
        // Below the cutoff the calling thread does all the work.
        let caller = std::thread::current().id();
        let ids = par_map_with(&[1, 2, 3], 8, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        let items: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.1 + 0.3).collect();
        let work = |x: &f64| (x.sin() * x.exp()).ln_1p() / (x + 1.0);
        let seq: Vec<u64> = items.iter().map(|x| work(x).to_bits()).collect();
        for threads in [2, 3, 8] {
            let par: Vec<u64> = par_map_with(&items, threads, work)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn try_map_reports_first_error_in_input_order() {
        let items: Vec<i64> = (0..200).collect();
        let f = |x: &i64| {
            if *x % 71 == 13 {
                Err(*x)
            } else {
                Ok(x * 2)
            }
        };
        for threads in [1, 2, 4, 16] {
            // 13 and 84 and 155 fail; 13 is first in input order.
            assert_eq!(try_par_map_with(&items, threads, f), Err(13));
        }
        let clean: Vec<i64> = (0..100).collect();
        let ok = try_par_map_with(&clean, 4, |x| Ok::<_, ()>(x + 1)).unwrap();
        assert_eq!(ok, (1..=100).collect::<Vec<i64>>());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_with(&items, 4, |x| {
                assert!(*x != 57, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn global_thread_configuration_round_trips() {
        assert!(effective_threads() >= 1);
        set_threads(NonZeroUsize::new(3));
        assert_eq!(configured_threads(), NonZeroUsize::new(3));
        assert_eq!(effective_threads(), 3);
        set_threads(None);
        assert_eq!(configured_threads(), None);
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn cost_hint_keeps_cheap_sweeps_sequential() {
        // 121 items of ~1.2 µs (the seed evaluate_space shape): total work
        // ~145 µs is under the parallel threshold, so no spawning.
        let hint = CostHint::per_item_ns(1_200);
        assert_eq!(hint.workers(121, 8), 1);
        // 1000 items of the same work: parallel, but capped by the chunk
        // budget (1.2 ms / 100 µs = 12 chunks).
        assert_eq!(hint.workers(1000, 8), 8);
        assert_eq!(hint.workers(1000, 64), 12);
        // Expensive items parallelize even at short lengths.
        assert_eq!(CostHint::per_item_ns(1_000_000).workers(4, 8), 4);
        // Degenerate inputs.
        assert_eq!(hint.workers(0, 8), 1);
        assert_eq!(hint.workers(1, 8), 1);
        assert_eq!(CostHint::per_item_ns(0).ns_per_item(), 1);
    }

    #[test]
    fn hinted_maps_match_unhinted_bits_at_every_thread_count() {
        let items: Vec<f64> = (0..300).map(|i| f64::from(i) * 0.7 + 0.1).collect();
        let work = |x: &f64| (x.sqrt() * x.ln_1p()).sin();
        let seq: Vec<u64> = items.iter().map(|x| work(x).to_bits()).collect();
        for threads in [1, 2, 8] {
            for hint_ns in [1, 1_000, 10_000_000] {
                let hint = CostHint::per_item_ns(hint_ns);
                let got: Vec<u64> =
                    par_map_indexed_hinted(&items, threads, hint, |_, x| work(x).to_bits());
                assert_eq!(got, seq, "threads = {threads}, hint = {hint_ns}");
            }
        }
    }

    #[test]
    fn hinted_try_map_reports_first_error_in_input_order() {
        let items: Vec<i64> = (0..200).collect();
        let f = |_: usize, x: &i64| if *x % 71 == 13 { Err(*x) } else { Ok(x * 2) };
        for hint_ns in [1, 100_000] {
            let hint = CostHint::per_item_ns(hint_ns);
            assert_eq!(try_par_map_indexed_hinted(&items, 4, hint, f), Err(13));
        }
    }

    #[test]
    fn hinted_map_stays_on_caller_below_work_threshold() {
        let items: Vec<u32> = (0..100).collect();
        let caller = std::thread::current().id();
        // 100 items x 1 ns is far below the threshold despite exceeding
        // MIN_PARALLEL_LEN.
        let ids = par_map_indexed_hinted(&items, 8, CostHint::per_item_ns(1), |_, _| {
            std::thread::current().id()
        });
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn uses_multiple_threads_for_large_inputs() {
        use std::collections::HashSet;
        let items: Vec<u32> = (0..256).collect();
        let ids = par_map_with(&items, 4, |_| {
            // A short stall so chunks overlap in time rather than one
            // worker finishing before the next spawns.
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }
}
