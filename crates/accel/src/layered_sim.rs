//! Per-layer roofline simulation.
//!
//! Resolves SRAM pressure layer by layer instead of per kernel: a layer
//! whose (resident + working-set) footprint fits in SRAM moves no
//! activation bytes to DRAM, and array utilization is assessed against
//! each layer's own parallelism — the granularity the paper's simulator
//! (Fig. 5) gets from consuming PyTorch models layer by layer.

use crate::config::{AcceleratorConfig, MemoryIntegration};
use cordoba_carbon::units::{Bytes, Joules, Seconds, Watts};
use cordoba_workloads::cost::{CostTable, KernelCost};
use cordoba_workloads::kernel::KernelId;
use cordoba_workloads::layers::{Layer, LayeredKernel};
use serde::{Deserialize, Serialize};

/// Simulation result for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSim {
    /// Time the layer's MACs need on the array.
    pub compute_time: Seconds,
    /// Time the layer's DRAM traffic needs on the bus.
    pub memory_time: Seconds,
    /// Bytes this layer moves to/from DRAM (weights + spilled activations).
    pub dram_traffic: Bytes,
    /// Dynamic energy of the layer.
    pub dynamic_energy: Joules,
}

impl LayerSim {
    /// The layer's contribution to kernel latency (roofline overlap).
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.compute_time.max(self.memory_time)
    }
}

/// Simulation result for a layered kernel on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayeredSim {
    /// Which kernel was simulated.
    pub kernel: KernelId,
    /// Per-layer results, in network order.
    pub layers: Vec<LayerSim>,
    /// End-to-end latency (sum of per-layer rooflines).
    pub latency: Seconds,
    /// Total dynamic energy.
    pub dynamic_energy: Joules,
    /// Total DRAM traffic.
    pub dram_traffic: Bytes,
}

impl LayeredSim {
    /// Average dynamic power over the inference.
    #[must_use]
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic_energy / self.latency
    }
}

/// Simulates one inference of `kernel` (layer by layer) on `config`.
#[must_use]
pub fn simulate_layered(config: &AcceleratorConfig, kernel: &LayeredKernel) -> LayeredSim {
    let t = config.tuning();
    let sram = config.sram();
    let sram_factor = match config.integration() {
        MemoryIntegration::OnDie => 1.0,
        MemoryIntegration::Stacked3d { .. } => t.stacked_sram_energy_factor,
    };

    let mut layers = Vec::with_capacity(kernel.layers.len());
    let mut latency = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    let mut traffic = Bytes::ZERO;

    for (i, layer) in kernel.layers.iter().enumerate() {
        let macs = layer.macs();
        let peak = t.peak_macs_per_second(config.mac_units(), macs / 1e9);
        let compute_time = Seconds::new(macs / peak);

        // Weights stream from DRAM once.
        let mut dram = layer.weight_bytes();
        // Kernel input / output tensors always cross DRAM.
        if i == 0 {
            dram += layer.input_bytes();
        }
        if i == kernel.layers.len() - 1 {
            dram += layer.output_bytes();
        }
        // Activation spill: the layer's live footprint is its working set
        // plus the network's resident buffers.
        let footprint = kernel.resident + layer.working_set();
        let overflow = footprint.value() / sram.value();
        if overflow > 1.0 {
            dram +=
                layer.working_set() * (t.refetch_scale * (overflow.powf(t.refetch_exponent) - 1.0));
        }
        let memory_time: Seconds = dram / t.dram_bandwidth;

        let mac_energy = t.mac_energy * macs;
        let sram_energy =
            t.sram_energy_per_byte(sram) * (macs * t.sram_bytes_per_mac) * sram_factor;
        let dram_energy = t.dram_energy_per_byte * dram.value();
        let dynamic_energy = mac_energy + sram_energy + dram_energy;

        let sim = LayerSim {
            compute_time,
            memory_time,
            dram_traffic: dram,
            dynamic_energy,
        };
        latency += sim.latency();
        energy += dynamic_energy;
        traffic += dram;
        layers.push(sim);
    }

    LayeredSim {
        kernel: kernel.id,
        layers,
        latency,
        dynamic_energy: energy,
        dram_traffic: traffic,
    }
}

/// Builds a [`CostTable`] from per-layer simulation of all fifteen kernels.
#[must_use]
pub fn layered_cost_table(config: &AcceleratorConfig) -> CostTable {
    let mut table = CostTable::new(config.leakage_power());
    for kernel in LayeredKernel::all() {
        let sim = simulate_layered(config, &kernel);
        table.insert(kernel.id, KernelCost::new(sim.latency, sim.dynamic_power()));
    }
    table
}

/// Convenience accessors over layers for analyses.
impl LayeredSim {
    /// The fraction of latency spent memory-bound.
    #[must_use]
    pub fn memory_bound_fraction(&self) -> f64 {
        let bound: f64 = self
            .layers
            .iter()
            .filter(|l| l.memory_time > l.compute_time)
            .map(|l| l.latency().value())
            .sum();
        bound / self.latency.value()
    }
}

/// Re-export of [`Layer`] metadata useful alongside simulation output.
pub fn layer_names(kernel: &LayeredKernel) -> Vec<&'static str> {
    kernel
        .layers
        .iter()
        .map(|l| match l {
            Layer::Conv2d { .. } => "conv",
            Layer::DepthwiseConv2d { .. } => "dwconv",
            Layer::FullyConnected { .. } => "fc",
            // `Layer` is #[non_exhaustive]; future kinds fall through.
            _ => "layer",
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;

    fn cfg(units: u32, sram_mib: f64) -> AcceleratorConfig {
        AcceleratorConfig::on_die(
            format!("u{units}s{sram_mib}"),
            units,
            Bytes::from_mebibytes(sram_mib),
        )
        .unwrap()
    }

    #[test]
    fn totals_compose_from_layers() {
        let kernel = LayeredKernel::for_kernel(KernelId::ResNet50);
        let sim = simulate_layered(&cfg(16, 8.0), &kernel);
        assert_eq!(sim.layers.len(), kernel.layers.len());
        let lat: f64 = sim.layers.iter().map(|l| l.latency().value()).sum();
        assert!((sim.latency.value() - lat).abs() < 1e-12);
        let e: f64 = sim.layers.iter().map(|l| l.dynamic_energy.value()).sum();
        assert!((sim.dynamic_energy.value() - e).abs() < 1e-12);
        assert!(sim.dynamic_power().value() > 0.0);
    }

    #[test]
    fn layered_and_aggregate_agree_on_magnitude() {
        // The two paths model the same hardware; latency and energy should
        // agree within a small factor for every kernel on a mid config.
        let config = cfg(16, 8.0);
        for kernel in LayeredKernel::all() {
            let layered = simulate_layered(&config, &kernel);
            let aggregate = simulate(&config, &kernel.id.descriptor());
            let lat_ratio = (layered.latency.value() / aggregate.latency.value())
                .max(aggregate.latency.value() / layered.latency.value());
            assert!(
                lat_ratio < 5.0,
                "{:?}: layered {} vs aggregate {} latency",
                kernel.id,
                layered.latency,
                aggregate.latency
            );
            let e_ratio = (layered.dynamic_energy.value() / aggregate.dynamic_energy.value())
                .max(aggregate.dynamic_energy.value() / layered.dynamic_energy.value());
            assert!(e_ratio < 5.0, "{:?} energy ratio {e_ratio}", kernel.id);
        }
    }

    #[test]
    fn fitting_every_layer_eliminates_activation_spill() {
        // With enormous SRAM, DRAM traffic reduces to weights + kernel I/O.
        let kernel = LayeredKernel::for_kernel(KernelId::UNet);
        let sim = simulate_layered(&cfg(16, 4096.0), &kernel);
        let weights = kernel.total_weights();
        let io = kernel.layers.first().unwrap().input_bytes()
            + kernel.layers.last().unwrap().output_bytes();
        assert!(
            (sim.dram_traffic.value() - weights.value() - io.value()).abs() < 1.0,
            "traffic {} vs weights+io {}",
            sim.dram_traffic,
            weights + io
        );
    }

    #[test]
    fn more_sram_never_increases_layered_traffic() {
        let kernel = LayeredKernel::for_kernel(KernelId::Sr512);
        let mut prev = f64::INFINITY;
        for sram in [1.0, 4.0, 16.0, 64.0, 256.0] {
            let sim = simulate_layered(&cfg(16, sram), &kernel);
            assert!(sim.dram_traffic.value() <= prev);
            prev = sim.dram_traffic.value();
        }
    }

    #[test]
    fn sr_burst_buffers_dominate_spill() {
        // SR(1024)'s resident burst frames blow any reasonable SRAM, so
        // almost the whole run is memory-bound on small SRAM.
        let kernel = LayeredKernel::for_kernel(KernelId::Sr1024);
        let starved = simulate_layered(&cfg(16, 2.0), &kernel);
        assert!(starved.memory_bound_fraction() > 0.9);
        let fed = simulate_layered(&cfg(16, 512.0), &kernel);
        assert!(fed.memory_bound_fraction() < starved.memory_bound_fraction());
        assert!(fed.latency < starved.latency);
    }

    #[test]
    fn small_layers_underutilize_big_arrays() {
        // MobileNet's tiny layers cannot fill a 1024-unit array: latency
        // improves far less than the 64x unit increase.
        let kernel = LayeredKernel::for_kernel(KernelId::MobileNetV2);
        let small = simulate_layered(&cfg(16, 8.0), &kernel);
        let big = simulate_layered(&cfg(1024, 8.0), &kernel);
        let speedup = small.latency.value() / big.latency.value();
        assert!(speedup < 16.0, "speedup {speedup}");
        assert!(speedup > 1.0);
    }

    #[test]
    fn layered_cost_table_covers_all_kernels() {
        let table = layered_cost_table(&cfg(16, 8.0));
        assert_eq!(table.len(), 15);
        let task = cordoba_workloads::task::Task::xr_5_kernels();
        assert!(table.task_delay(&task).unwrap().is_positive());
    }

    #[test]
    fn layer_names_match_kinds() {
        let kernel = LayeredKernel::for_kernel(KernelId::MobileNetV2);
        let names = layer_names(&kernel);
        assert_eq!(names.len(), kernel.layers.len());
        assert!(names.contains(&"dwconv"));
        assert!(names.contains(&"conv"));
        assert!(names.contains(&"fc"));
    }
}
