//! Technology tuning constants for the accelerator simulator.
//!
//! All constants are quoted at 7 nm (the node of the paper's baseline
//! accelerator \[48\] and 3D study \[54\]) and scaled to other nodes through the
//! fab profiles of `cordoba-carbon`. The absolute values are synthesized
//! from published figures (INT8 MAC ≈ 0.4 pJ, on-die SRAM ≈ 0.1 pJ/B,
//! LPDDR4 DRAM ≈ 30 pJ/B at 16 GB/s); the DSE results depend on their
//! *relative* magnitudes (DRAM ≫ SRAM ≫ MAC), which are robust.

use cordoba_carbon::fab::ProcessNode;
use cordoba_carbon::units::{Bytes, BytesPerSecond, Hertz, Joules, Watts};
use serde::{Deserialize, Serialize};

/// Number of scalar INT8 MACs in one "MAC unit" of the design space.
///
/// The paper sweeps "number of MAC units"; we size a unit as a 128-lane
/// dot-product engine, so the 1K/2K-MAC configurations of §VI-E correspond
/// to 8/16 units.
pub const MACS_PER_UNIT: u32 = 128;

/// Tuning constants for one technology node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechTuning {
    /// The node these constants are for.
    pub node: ProcessNode,
    /// Clock frequency of the MAC array.
    pub clock: Hertz,
    /// Achieved fraction of peak MAC throughput for a small array.
    pub utilization: f64,
    /// Array size (in MAC units) at which achieved utilization halves —
    /// larger arrays map real kernels with progressively more idle lanes
    /// (the paper's simulator shows the same saturation \[48\]).
    pub utilization_knee_units: f64,
    /// Energy per INT8 MAC (including local register traffic).
    pub mac_energy: Joules,
    /// On-die SRAM access energy per byte for a 1 MiB macro; grows with
    /// capacity as `(MiB)^sram_energy_exponent`.
    pub sram_energy_per_byte_1mib: Joules,
    /// Capacity exponent of SRAM access energy.
    pub sram_energy_exponent: f64,
    /// Effective SRAM bytes touched per MAC after register reuse.
    pub sram_bytes_per_mac: f64,
    /// Energy per byte moved to/from off-chip DRAM.
    pub dram_energy_per_byte: Joules,
    /// Multiplier on SRAM access energy for 3D-stacked SRAM (hybrid-bond
    /// TSV hop); still far below DRAM \[54\].
    pub stacked_sram_energy_factor: f64,
    /// Peak off-chip DRAM bandwidth (the paper's LPDDR4 16 GB/s).
    pub dram_bandwidth: BytesPerSecond,
    /// Leakage power per MiB of on-die SRAM.
    pub leakage_per_sram_mib: Watts,
    /// Leakage power per MAC unit.
    pub leakage_per_mac_unit: Watts,
    /// Fixed leakage of control/NoC/PHY.
    pub leakage_base: Watts,
    /// Logic area of one MAC unit, in mm².
    pub mac_unit_area_mm2: f64,
    /// SRAM area per MiB, in mm².
    pub sram_area_mm2_per_mib: f64,
    /// Fixed die overhead (control, NoC, I/O ring), in mm².
    pub base_area_mm2: f64,
    /// Fraction of activation footprint that must move to DRAM as
    /// input/output regardless of SRAM capacity.
    pub io_traffic_fraction: f64,
    /// Exponent of the re-fetch amplification when activations exceed SRAM
    /// (tiled-dataflow refetch; calibrated so 2→32 MiB on SR kernels cuts
    /// bandwidth need by roughly the paper's 89.6x).
    pub refetch_exponent: f64,
    /// Scale of the re-fetch amplification term.
    pub refetch_scale: f64,
}

impl TechTuning {
    /// The 7 nm reference tuning.
    #[must_use]
    pub fn n7() -> Self {
        Self {
            node: ProcessNode::N7,
            clock: Hertz::from_gigahertz(0.8),
            utilization: 0.9,
            utilization_knee_units: 16.0,
            mac_energy: Joules::from_picojoules(0.4),
            sram_energy_per_byte_1mib: Joules::from_picojoules(0.08),
            sram_energy_exponent: 0.45,
            sram_bytes_per_mac: 1.0,
            dram_energy_per_byte: Joules::from_picojoules(30.0),
            stacked_sram_energy_factor: 1.3,
            dram_bandwidth: BytesPerSecond::from_gigabytes_per_second(16.0),
            leakage_per_sram_mib: Watts::new(0.008),
            leakage_per_mac_unit: Watts::new(0.002),
            leakage_base: Watts::new(0.020),
            mac_unit_area_mm2: 0.60,
            sram_area_mm2_per_mib: 0.80,
            base_area_mm2: 0.5,
            io_traffic_fraction: 0.25,
            refetch_exponent: 1.6,
            refetch_scale: 0.02,
        }
    }

    /// Tuning for an arbitrary node, scaled from the 7 nm reference via the
    /// fab profiles (energy by `energy_per_op`, area by logic density,
    /// leakage by per-area leakage).
    #[must_use]
    pub fn for_node(node: ProcessNode) -> Self {
        let base = Self::n7();
        if node == ProcessNode::N7 {
            return base;
        }
        let ref_p = ProcessNode::N7.profile();
        let p = node.profile();
        let energy = p.energy_per_op / ref_p.energy_per_op;
        let area = ref_p.logic_density / p.logic_density;
        let leakage = p.leakage_per_area() / ref_p.leakage_per_area() * area;
        Self {
            node,
            mac_energy: base.mac_energy * energy,
            sram_energy_per_byte_1mib: base.sram_energy_per_byte_1mib * energy,
            mac_unit_area_mm2: base.mac_unit_area_mm2 * area,
            sram_area_mm2_per_mib: base.sram_area_mm2_per_mib * area,
            base_area_mm2: base.base_area_mm2 * area,
            leakage_per_sram_mib: base.leakage_per_sram_mib * leakage,
            leakage_per_mac_unit: base.leakage_per_mac_unit * leakage,
            leakage_base: base.leakage_base * leakage,
            ..base
        }
    }

    /// SRAM access energy per byte at the given capacity.
    #[must_use]
    pub fn sram_energy_per_byte(&self, capacity: Bytes) -> Joules {
        let mib = capacity.to_mebibytes().max(1.0 / 64.0);
        self.sram_energy_per_byte_1mib * mib.powf(self.sram_energy_exponent)
    }

    /// Achieved utilization of an array of `units` MAC units running a
    /// kernel of `gmacs` billion MACs per inference.
    ///
    /// Utilization decays once the array outgrows the kernel's available
    /// parallelism: the knee scales with kernel size (clamped to
    /// `[0.5, 16] x` the base knee), so a large super-resolution kernel
    /// keeps a 2K-MAC array busy while MobileNet-V2 cannot.
    #[must_use]
    pub fn achieved_utilization(&self, units: u32, gmacs: f64) -> f64 {
        let knee = self.utilization_knee_units * gmacs.clamp(0.5, 16.0);
        self.utilization / (1.0 + f64::from(units) / knee)
    }

    /// Achieved MAC throughput of `units` MAC units on a kernel of
    /// `gmacs` billion MACs, in MACs per second.
    #[must_use]
    pub fn peak_macs_per_second(&self, units: u32, gmacs: f64) -> f64 {
        f64::from(units)
            * f64::from(MACS_PER_UNIT)
            * self.clock.value()
            * self.achieved_utilization(units, gmacs)
    }
}

impl Default for TechTuning {
    fn default() -> Self {
        Self::n7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_constants_are_ordered() {
        let t = TechTuning::n7();
        // DRAM >> SRAM >> MAC energy per byte/op.
        assert!(t.dram_energy_per_byte.value() > 50.0 * t.sram_energy_per_byte_1mib.value());
        assert!(t.sram_energy_per_byte_1mib.value() > 0.1 * t.mac_energy.value());
        assert!(t.utilization > 0.0 && t.utilization <= 1.0);
    }

    #[test]
    fn sram_energy_grows_with_capacity() {
        let t = TechTuning::n7();
        let e1 = t.sram_energy_per_byte(Bytes::from_mebibytes(1.0));
        let e8 = t.sram_energy_per_byte(Bytes::from_mebibytes(8.0));
        let e64 = t.sram_energy_per_byte(Bytes::from_mebibytes(64.0));
        assert!(e1 < e8 && e8 < e64);
        // 8x capacity -> 8^0.45 ~ 2.55x energy.
        assert!((e8.value() / e1.value() - 8.0f64.powf(0.45)).abs() < 1e-9);
    }

    #[test]
    fn throughput_grows_sublinearly_with_units() {
        let t = TechTuning::n7();
        let one = t.peak_macs_per_second(1, 1.0);
        let expected = 128.0 * 0.8e9 * 0.9 / (1.0 + 1.0 / 16.0);
        assert!((one - expected).abs() / one < 1e-12);
        // Monotonic but saturating: 16x the units gives <16x the rate.
        let sixteen = t.peak_macs_per_second(16, 1.0);
        assert!(sixteen > one && sixteen / one < 16.0);
        let mut prev = 0.0;
        for u in [1u32, 2, 8, 32, 128, 512, 1024] {
            let rate = t.peak_macs_per_second(u, 1.0);
            assert!(rate > prev, "throughput must grow with units");
            prev = rate;
        }
    }

    #[test]
    fn utilization_halves_at_the_kernel_scaled_knee() {
        let t = TechTuning::n7();
        // 1 GMAC kernel: knee at 16 units.
        assert!((t.achieved_utilization(16, 1.0) - 0.45).abs() < 1e-12);
        // 16 GMAC kernel (SR 512): knee at 256 units -> a 16-unit array
        // stays near full utilization, so doubling 1K -> 2K MACs nearly
        // doubles throughput (the Fig. 11 premise).
        assert!(t.achieved_utilization(16, 16.0) > 0.8);
        let r = t.peak_macs_per_second(16, 16.0) / t.peak_macs_per_second(8, 16.0);
        assert!(r > 1.9, "2K/1K throughput ratio {r}");
        // Tiny kernels saturate small arrays quickly.
        assert!(t.achieved_utilization(64, 0.3) < 0.2);
        assert!(t.achieved_utilization(1, 1.0) > t.achieved_utilization(1024, 1.0));
    }

    #[test]
    fn node_scaling_moves_energy_and_area_together() {
        let n7 = TechTuning::for_node(ProcessNode::N7);
        let n28 = TechTuning::for_node(ProcessNode::N28);
        let n3 = TechTuning::for_node(ProcessNode::N3);
        assert!(n28.mac_energy > n7.mac_energy);
        assert!(n3.mac_energy < n7.mac_energy);
        assert!(n28.mac_unit_area_mm2 > n7.mac_unit_area_mm2);
        assert!(n3.mac_unit_area_mm2 < n7.mac_unit_area_mm2);
        // DRAM energy is off-chip and does not scale.
        assert_eq!(n28.dram_energy_per_byte, n7.dram_energy_per_byte);
        assert_eq!(n7, TechTuning::default());
    }

    #[test]
    fn stacked_sram_stays_far_below_dram() {
        let t = TechTuning::n7();
        let stacked = t.sram_energy_per_byte(Bytes::from_mebibytes(8.0)).value()
            * t.stacked_sram_energy_factor;
        assert!(stacked * 10.0 < t.dram_energy_per_byte.value());
    }
}
