//! The paper's 121-configuration design space (§VI-B, Fig. 8).
//!
//! Eleven MAC-array sizes x eleven SRAM capacities, both power-of-two swept
//! from 1 to 1024. Configuration ids follow the paper's `a1..a121` naming
//! with MAC-major ordering, reproducing the ids it calls out:
//! a12 = 2 units/1 MiB, a23 = 4/1, a38 = 8/16, a48 = 16/8, a58 = 32/4.

use crate::config::AcceleratorConfig;
use cordoba_carbon::units::Bytes;
use serde::{Deserialize, Serialize};

/// The eleven MAC-unit counts in the sweep.
pub const MAC_UNIT_SWEEP: [u32; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
/// The eleven SRAM capacities in the sweep, in MiB.
pub const SRAM_MIB_SWEEP: [u32; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Number of configurations in the space.
pub const SPACE_SIZE: usize = MAC_UNIT_SWEEP.len() * SRAM_MIB_SWEEP.len();

/// A configuration's position in the 121-point grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridIndex {
    /// Index into [`MAC_UNIT_SWEEP`].
    pub mac_idx: usize,
    /// Index into [`SRAM_MIB_SWEEP`].
    pub sram_idx: usize,
}

impl GridIndex {
    /// The 1-based `a{n}` ordinal of this grid point.
    #[must_use]
    pub fn ordinal(self) -> usize {
        self.mac_idx * SRAM_MIB_SWEEP.len() + self.sram_idx + 1
    }

    /// Parses an `a{n}` name back to its grid position.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let n: usize = name.strip_prefix('a')?.parse().ok()?;
        if !(1..=SPACE_SIZE).contains(&n) {
            return None;
        }
        let idx = n - 1;
        Some(Self {
            mac_idx: idx / SRAM_MIB_SWEEP.len(),
            sram_idx: idx % SRAM_MIB_SWEEP.len(),
        })
    }
}

/// Builds the named configuration `a{n}`.
///
/// Returns `None` for names outside `a1..=a121`.
#[must_use]
pub fn config_by_name(name: &str) -> Option<AcceleratorConfig> {
    let grid = GridIndex::from_name(name)?;
    Some(build(grid))
}

/// Builds the full 121-configuration design space, `a1` through `a121`.
///
/// # Examples
///
/// ```
/// use cordoba_accel::space::design_space;
///
/// let space = design_space();
/// assert_eq!(space.len(), 121);
/// let a48 = &space[47];
/// assert_eq!(a48.name(), "a48");
/// assert_eq!(a48.mac_units(), 16);
/// assert_eq!(a48.sram().to_mebibytes(), 8.0);
/// ```
#[must_use]
pub fn design_space() -> Vec<AcceleratorConfig> {
    let _span = cordoba_obs::span("accel/design_space");
    let mut configs = Vec::with_capacity(SPACE_SIZE);
    for mac_idx in 0..MAC_UNIT_SWEEP.len() {
        for sram_idx in 0..SRAM_MIB_SWEEP.len() {
            configs.push(build(GridIndex { mac_idx, sram_idx }));
        }
    }
    configs
}

fn build(grid: GridIndex) -> AcceleratorConfig {
    let units = MAC_UNIT_SWEEP[grid.mac_idx];
    let sram = Bytes::from_mebibytes(f64::from(SRAM_MIB_SWEEP[grid.sram_idx]));
    AcceleratorConfig::on_die(format!("a{}", grid.ordinal()), units, sram)
        .expect("sweep values are positive")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_121_unique_configs() {
        let space = design_space();
        assert_eq!(space.len(), 121);
        let mut names: Vec<&str> = space.iter().map(AcceleratorConfig::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 121);
    }

    #[test]
    fn paper_ids_decode_to_expected_shapes() {
        // The ids the paper calls out in §VI-B/§VI-C.
        let cases = [
            ("a1", 1u32, 1.0),
            ("a12", 2, 1.0),
            ("a23", 4, 1.0),
            ("a37", 8, 8.0),
            ("a38", 8, 16.0),
            ("a48", 16, 8.0),
            ("a58", 32, 4.0),
        ];
        for (name, units, sram) in cases {
            let c = config_by_name(name).unwrap();
            assert_eq!(c.mac_units(), units, "{name}");
            assert!((c.sram().to_mebibytes() - sram).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    fn ordinal_round_trips() {
        for n in 1..=SPACE_SIZE {
            let name = format!("a{n}");
            let grid = GridIndex::from_name(&name).unwrap();
            assert_eq!(grid.ordinal(), n);
        }
    }

    #[test]
    fn bad_names_rejected() {
        assert!(config_by_name("a0").is_none());
        assert!(config_by_name("a122").is_none());
        assert!(config_by_name("b5").is_none());
        assert!(config_by_name("a").is_none());
        assert!(config_by_name("").is_none());
    }

    #[test]
    fn space_order_matches_names() {
        let space = design_space();
        for (i, cfg) in space.iter().enumerate() {
            assert_eq!(cfg.name(), format!("a{}", i + 1));
        }
    }

    #[test]
    fn extremes() {
        let space = design_space();
        assert_eq!(space[0].mac_units(), 1);
        assert_eq!(space[0].sram().to_mebibytes(), 1.0);
        let last = &space[120];
        assert_eq!(last.mac_units(), 1024);
        assert_eq!(last.sram().to_mebibytes(), 1024.0);
    }
}
