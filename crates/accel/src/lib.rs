//! # cordoba-accel
//!
//! ML accelerator simulator substrate for the CORDOBA framework — a
//! from-scratch analytical rebuild of the performance/power simulator the
//! paper uses (Fig. 5, based on \[48\], \[44\]) plus its 3D-stacking extension
//! \[54\].
//!
//! * [`cache`] — embodied-carbon memoization keyed by configuration shape,
//!   so multi-task sweeps run the yield/wafer math once per design point;
//! * [`params`] — per-node technology tuning (MAC/SRAM/DRAM energies, area,
//!   leakage, LPDDR4 bandwidth);
//! * [`config`] — accelerator design points: MAC units x SRAM, 2D or
//!   3D-stacked, with die-area and embodied-carbon accounting;
//! * [`sim`] — roofline latency/energy simulation with an SRAM-overflow
//!   re-fetch model, producing [`cordoba_workloads::cost::CostTable`]s;
//! * [`space`] — the 121-configuration design space (`a1..a121`);
//! * [`stacking`] — the Fig. 11 baseline + six 3D configurations.
//!
//! # Example
//!
//! ```
//! use cordoba_accel::prelude::*;
//! use cordoba_workloads::prelude::*;
//!
//! let a48 = config_by_name("a48").expect("a48 is in the space");
//! let table = full_cost_table(&a48);
//! let delay = table.task_delay(&Task::xr_10_kernels())?;
//! assert!(delay.is_positive());
//! # Ok::<(), cordoba_workloads::cost::MissingKernel>(())
//! ```

pub mod cache;
pub mod config;
pub mod layered_sim;
pub mod params;
pub mod sim;
pub mod space;
pub mod stacking;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cache::{CacheStats, EmbodiedCache};
    pub use crate::config::{AcceleratorConfig, MemoryIntegration};
    pub use crate::layered_sim::{layered_cost_table, simulate_layered, LayerSim, LayeredSim};
    pub use crate::params::{TechTuning, MACS_PER_UNIT};
    pub use crate::sim::{
        cost_table, full_cost_table, full_cost_table_batch, simulate, simulate_batch, ConfigBatch,
        KernelSim, KernelSlab, SlabCosts, TaskPlan,
    };
    pub use crate::space::{config_by_name, design_space, GridIndex, SPACE_SIZE};
    pub use crate::stacking::{baseline, stacked_configs, study_configs};
}
