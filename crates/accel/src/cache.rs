//! Embodied-carbon memoization for multi-task sweeps.
//!
//! [`AcceleratorConfig::embodied_carbon`] is task-independent: the yield,
//! wafer, and packaging math depends only on the die geometry and the
//! [`EmbodiedModel`], never on the workload. Multi-task design-space sweeps
//! nevertheless recompute it once per (config, task) pair, so a 121-config x
//! 29-task `OpTimeSweep` grid runs the same assembly accounting 29x per
//! design point. [`EmbodiedCache`] memoizes the result per configuration
//! *for one model*: each cache instance is bound to the [`EmbodiedModel`] it
//! was constructed with, which makes invalidation trivial — a different
//! model means a different cache, never a stale entry.
//!
//! The cache key is a structural fingerprint of everything
//! `embodied_carbon` reads from the configuration (MAC units, SRAM
//! capacity, integration style, and the area/node fields of
//! [`TechTuning`](crate::params::TechTuning)); the display name is
//! deliberately excluded so identically shaped configurations share one
//! entry. Floating-point fields are fingerprinted by IEEE-754 bit pattern,
//! so two configs collide only when every field is bit-identical and the
//! cached value is exactly the value a fresh computation would produce.
//
// cordoba-lint: allow-file(atomic-ordering) — hits/misses are monotonic
// observability counters; cached values are handed off through the Mutex,
// never through the counters, so Relaxed is sufficient.
//!
//! The cache is `Sync` (interior `Mutex`) so one instance can serve all
//! workers of a `cordoba_par` sweep.
//!
//! # Examples
//!
//! ```
//! use cordoba_accel::cache::EmbodiedCache;
//! use cordoba_accel::config::AcceleratorConfig;
//! use cordoba_carbon::embodied::EmbodiedModel;
//! use cordoba_carbon::units::Bytes;
//!
//! let cache = EmbodiedCache::new(EmbodiedModel::default());
//! let cfg = AcceleratorConfig::on_die("a1", 8, Bytes::from_mebibytes(4.0))?;
//! let first = cache.embodied(&cfg)?;
//! let second = cache.embodied(&cfg)?;
//! assert_eq!(first, second);
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! # Ok::<(), cordoba_carbon::CarbonError>(())
//! ```

use crate::config::{AcceleratorConfig, MemoryIntegration};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::units::GramsCo2e;
use cordoba_carbon::yield_model::YieldModel;
use cordoba_carbon::CarbonError;
use cordoba_store::{hex_f64, parse_hex_f64, KeyBuilder, Store, StoreKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Store entry kind for persisted embodied-carbon values.
const STORE_KIND: &str = "embodied";

/// Process-wide lookup accounting by serving tier, exported as
/// `accel_embodied_cache_lookups{tier="..."}`: `memory` and `persistent`
/// are the two hit tiers, `compute` is a miss that ran the model.
static CACHE_LOOKUPS: cordoba_obs::LabeledCounter = cordoba_obs::LabeledCounter::new(
    "accel/embodied_cache/lookups",
    "tier",
    &["memory", "persistent", "compute"],
);

/// Hit/miss counters for an [`EmbodiedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the full embodied-carbon computation.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups served.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A memoized view of one [`EmbodiedModel`]'s embodied-carbon computation.
///
/// See the [module docs](self) for the keying and invalidation contract.
#[derive(Debug)]
pub struct EmbodiedCache {
    model: EmbodiedModel,
    entries: Mutex<HashMap<u64, GramsCo2e>>,
    store: Option<Store>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EmbodiedCache {
    /// Creates an empty cache bound to `model`.
    #[must_use]
    pub fn new(model: EmbodiedModel) -> Self {
        Self {
            model,
            entries: Mutex::new(HashMap::new()),
            store: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Creates a cache whose in-memory map is backed by a persistent
    /// [`Store`] tier: lookups that miss in memory consult the store
    /// (model *and* config shape participate in the content hash), and
    /// freshly computed values are written behind so the next process
    /// starts warm.
    #[must_use]
    pub fn with_store(model: EmbodiedModel, store: Store) -> Self {
        let mut cache = Self::new(model);
        cache.store = Some(store);
        cache
    }

    /// The model whose results this cache memoizes.
    #[must_use]
    pub fn model(&self) -> &EmbodiedModel {
        &self.model
    }

    /// The embodied carbon of `config` under this cache's model, computed
    /// at most once per distinct configuration shape.
    ///
    /// # Errors
    ///
    /// Propagates assembly-construction errors from
    /// [`AcceleratorConfig::embodied_carbon`] (cannot occur for validated
    /// configurations). Errors are not cached.
    pub fn embodied(&self, config: &AcceleratorConfig) -> Result<GramsCo2e, CarbonError> {
        let key = fingerprint(config);
        if let Some(cached) = self.lock().get(&key).copied() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_LOOKUPS.incr(0);
            cordoba_obs::record(&cordoba_obs::Event::CacheHit);
            return Ok(cached);
        }
        if let Some(persisted) = self.persistent_lookup(config) {
            self.lock().insert(key, persisted);
            // The persistent tier served without running the model, so this
            // still counts as a cache hit.
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_LOOKUPS.incr(1);
            cordoba_obs::record(&cordoba_obs::Event::CacheHit);
            return Ok(persisted);
        }
        // Compute outside the lock so concurrent sweep workers are not
        // serialized on the yield/wafer math; a racing duplicate insert is
        // harmless because both workers compute the identical value.
        let value = config.embodied_carbon(&self.model)?;
        self.lock().insert(key, value);
        self.persistent_write(config, value);
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_LOOKUPS.incr(2);
        cordoba_obs::record(&cordoba_obs::Event::CacheMiss);
        Ok(value)
    }

    /// Consults the persistent tier, if attached; any damage is a miss.
    fn persistent_lookup(&self, config: &AcceleratorConfig) -> Option<GramsCo2e> {
        let store = self.store.as_ref()?;
        let lines = store.get(STORE_KIND, store_key(config, &self.model))?;
        let [line] = lines.as_slice() else {
            return None;
        };
        parse_hex_f64(line).map(GramsCo2e::new)
    }

    /// Writes a freshly computed value behind into the persistent tier.
    /// Write failures are swallowed: the store is an accelerant, never a
    /// correctness dependency.
    fn persistent_write(&self, config: &AcceleratorConfig, value: GramsCo2e) {
        if let Some(store) = self.store.as_ref() {
            let key = store_key(config, &self.model);
            let _ = store.put(STORE_KIND, key, &[hex_f64(value.value())]);
        }
    }

    /// Hit/miss counters accumulated since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct configuration shapes cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` if no configuration has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, GramsCo2e>> {
        match self.entries.lock() {
            Ok(guard) => guard,
            // A poisoned map only means another worker panicked mid-insert;
            // every stored value is still a completed, correct computation.
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Content-address for one `(config shape, model)` embodied-carbon result.
///
/// Unlike [`fingerprint`] — which keys the in-memory map of a cache already
/// bound to one model — the persistent store outlives the process, so the
/// model's own parameters (fab carbon intensity, yield model, packaging)
/// must participate in the hash alongside the config shape. The display
/// name stays excluded, and floats contribute raw IEEE-754 bits.
#[must_use]
pub fn store_key(config: &AcceleratorConfig, model: &EmbodiedModel) -> StoreKey {
    let mut k = KeyBuilder::new(STORE_KIND);
    k.push_f64(model.ci_fab().value());
    match model.yield_model() {
        YieldModel::Murphy => k.push_u64(0),
        YieldModel::Poisson => k.push_u64(1),
        YieldModel::Seeds => k.push_u64(2),
        YieldModel::BoseEinstein { layers } => {
            k.push_u64(3);
            k.push_u64(u64::from(layers));
        }
        YieldModel::Fixed { fraction } => {
            k.push_u64(4);
            k.push_f64(fraction);
        }
        // `YieldModel` is non-exhaustive; key any future variant by its
        // debug rendering so it cannot collide with the tags above.
        other => {
            k.push_u64(u64::MAX);
            k.push_str(&format!("{other:?}"));
        }
    }
    k.push_f64(model.packaging_per_die().value());
    k.push_u64(u64::from(config.mac_units()));
    k.push_f64(config.sram().value());
    match config.integration() {
        MemoryIntegration::OnDie => k.push_u64(0),
        MemoryIntegration::Stacked3d { dies } => {
            k.push_u64(1);
            k.push_u64(u64::from(dies));
        }
    }
    let tuning = config.tuning();
    k.push_u64(u64::from(tuning.node.nanometers()));
    k.push_f64(tuning.mac_unit_area_mm2);
    k.push_f64(tuning.sram_area_mm2_per_mib);
    k.push_f64(tuning.base_area_mm2);
    k.finish()
}

/// FNV-1a structural fingerprint over everything `embodied_carbon` reads.
fn fingerprint(config: &AcceleratorConfig) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix(u64::from(config.mac_units()));
    mix(config.sram().value().to_bits());
    match config.integration() {
        MemoryIntegration::OnDie => mix(0),
        MemoryIntegration::Stacked3d { dies } => {
            mix(1);
            mix(u64::from(dies));
        }
    }
    let tuning = config.tuning();
    mix(u64::from(tuning.node.nanometers()));
    mix(tuning.mac_unit_area_mm2.to_bits());
    mix(tuning.sram_area_mm2_per_mib.to_bits());
    mix(tuning.base_area_mm2.to_bits());
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TechTuning;
    use cordoba_carbon::fab::ProcessNode;
    use cordoba_carbon::units::Bytes;

    fn cfg(name: &str, units: u32, sram_mib: f64) -> AcceleratorConfig {
        AcceleratorConfig::on_die(name, units, Bytes::from_mebibytes(sram_mib)).unwrap()
    }

    #[test]
    fn cached_value_matches_direct_computation() {
        let model = EmbodiedModel::default();
        let cache = EmbodiedCache::new(model.clone());
        for units in [1, 8, 64] {
            for sram in [1.0, 4.0, 32.0] {
                let c = cfg("x", units, sram);
                let direct = c.embodied_carbon(&model).unwrap();
                assert_eq!(cache.embodied(&c).unwrap(), direct);
                // Second lookup hits and returns the identical bits.
                assert_eq!(cache.embodied(&c).unwrap(), direct);
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 9);
        assert_eq!(stats.hits, 9);
        assert_eq!(cache.len(), 9);
    }

    #[test]
    fn seed_space_misses_once_and_pins_the_miss_counter() {
        // Cold pass over the full 121-config seed space: every distinct
        // shape misses exactly once, and the global
        // `events/embodied_cache_miss` counter moves in lockstep with
        // `stats()` (>= because other tests may share the process).
        let space = crate::space::design_space();
        let cache = EmbodiedCache::new(EmbodiedModel::default());
        cordoba_obs::set_metrics_enabled(true);
        let counter_before = miss_counter();
        for c in &space {
            cache.embodied(c).unwrap();
        }
        let counter_after = miss_counter();
        cordoba_obs::set_metrics_enabled(false);
        let cold = cache.stats();
        assert_eq!(cold.misses, 121);
        assert_eq!(cold.hits, 0);
        assert_eq!(cache.len(), 121);
        assert!(counter_after - counter_before >= cold.misses);
        // Warm pass: zero further misses.
        for c in &space {
            cache.embodied(c).unwrap();
        }
        let warm = cache.stats();
        assert_eq!(warm.misses, 121, "warm path must not recompute");
        assert_eq!(warm.hits, 121);
        assert_eq!(warm.lookups(), 242);
    }

    /// Current value of the global embodied-cache miss counter.
    fn miss_counter() -> u64 {
        cordoba_obs::counter_snapshot()
            .iter()
            .find(|(name, _)| *name == "events/embodied_cache_miss")
            .map_or(0, |&(_, v)| v)
    }

    #[test]
    fn name_is_not_part_of_the_key() {
        let cache = EmbodiedCache::new(EmbodiedModel::default());
        let a = cache.embodied(&cfg("a48", 16, 8.0)).unwrap();
        let b = cache.embodied(&cfg("renamed", 16, 8.0)).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let cache = EmbodiedCache::new(EmbodiedModel::default());
        let flat = cache.embodied(&cfg("f", 16, 8.0)).unwrap();
        let stacked =
            AcceleratorConfig::stacked_3d("s", 16, Bytes::from_mebibytes(4.0), 2).unwrap();
        let stacked_carbon = cache.embodied(&stacked).unwrap();
        assert!(stacked_carbon.value() > flat.value());
        assert_eq!(cache.stats().misses, 2);

        // Same geometry on a different node must not share an entry.
        let n5 = AcceleratorConfig::with_tuning(
            "n5",
            16,
            Bytes::from_mebibytes(8.0),
            crate::config::MemoryIntegration::OnDie,
            TechTuning::for_node(ProcessNode::N5),
        )
        .unwrap();
        let n5_carbon = cache.embodied(&n5).unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert!((n5_carbon.value() - flat.value()).abs() > f64::EPSILON);
    }

    #[test]
    fn persistent_tier_serves_second_process_without_recompute() {
        let dir = std::env::temp_dir().join("cordoba-accel-cache-persist");
        let _ = std::fs::remove_dir_all(&dir);
        let store = cordoba_store::Store::open(&dir).unwrap();
        let model = EmbodiedModel::default();
        let configs: Vec<AcceleratorConfig> = (1..=9).map(|u| cfg("c", u, f64::from(u))).collect();

        // "Process one": cold memory, cold disk — every lookup computes
        // and writes behind.
        let cold = EmbodiedCache::with_store(model.clone(), store.clone());
        let expected: Vec<GramsCo2e> = configs.iter().map(|c| cold.embodied(c).unwrap()).collect();
        assert_eq!(cold.stats().misses, 9);

        // "Process two": cold memory, warm disk — zero model runs, and the
        // served values are bit-identical to the fresh computation.
        let warm = EmbodiedCache::with_store(model.clone(), store.clone());
        for (c, want) in configs.iter().zip(&expected) {
            let got = warm.embodied(c).unwrap();
            assert_eq!(got.value().to_bits(), want.value().to_bits());
        }
        assert_eq!(warm.stats().misses, 0);
        assert_eq!(warm.stats().hits, 9);

        // A different code-version salt invalidates everything: back to
        // computing (and re-writing) rather than serving stale entries.
        let resalted = EmbodiedCache::with_store(
            model,
            cordoba_store::Store::open_with_salt(&dir, "different-code").unwrap(),
        );
        let _ = resalted.embodied(&configs[0]).unwrap();
        assert_eq!(resalted.stats().misses, 1);
    }

    #[test]
    fn store_key_separates_models_and_shapes() {
        let base = EmbodiedModel::default();
        let hot = base.clone().with_ci_fab(base.ci_fab() * 2.0);
        let a = cfg("a", 16, 8.0);
        let b = cfg("b", 16, 8.0);
        let c = cfg("c", 17, 8.0);
        // Name excluded; shape and model included.
        assert_eq!(store_key(&a, &base), store_key(&b, &base));
        assert_ne!(store_key(&a, &base), store_key(&c, &base));
        assert_ne!(store_key(&a, &base), store_key(&a, &hot));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = EmbodiedCache::new(EmbodiedModel::default());
        let configs: Vec<AcceleratorConfig> = (1..=32).map(|u| cfg("c", u, f64::from(u))).collect();
        let expected: Vec<GramsCo2e> = configs
            .iter()
            .map(|c| c.embodied_carbon(cache.model()).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (c, want) in configs.iter().zip(&expected) {
                        assert_eq!(cache.embodied(c).unwrap(), *want);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 4 * 32);
        assert!(stats.hits >= 3 * 32 - 32, "most lookups should hit");
    }
}
