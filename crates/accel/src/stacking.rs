//! The 3D-integration study configurations (§VI-E, Fig. 11) \[54\].
//!
//! A conventional baseline (1K MACs, 1 MiB on-die SRAM) against six
//! 3D-stacked designs combining 1K or 2K MACs with 2/4/8/16 MiB of
//! separately-fabricated, hybrid-bonded SRAM. Per the paper's methodology,
//! the 3D designs use conservative latency (same roofline as 2D) and gain
//! through memory energy and capacity.

use crate::config::AcceleratorConfig;
use cordoba_carbon::units::Bytes;

/// MAC units for the "1K" designs (8 x 128 = 1024 scalar MACs).
pub const UNITS_1K: u32 = 8;
/// MAC units for the "2K" designs (16 x 128 = 2048 scalar MACs).
pub const UNITS_2K: u32 = 16;

/// The baseline 2D accelerator: 1K MACs, 1 MiB on-die SRAM.
///
/// # Examples
///
/// ```
/// let base = cordoba_accel::stacking::baseline();
/// assert_eq!(base.name(), "Baseline_1K_1M");
/// assert!(!base.integration().is_stacked());
/// ```
#[must_use]
pub fn baseline() -> AcceleratorConfig {
    AcceleratorConfig::on_die("Baseline_1K_1M", UNITS_1K, Bytes::from_mebibytes(1.0))
        .expect("static baseline parameters are valid")
}

/// The six 3D-stacked configurations of Fig. 11(a).
///
/// Activation memory per memory die is 2 MiB for 1K-MAC designs and 4 MiB
/// for 2K-MAC designs, matching the paper.
#[must_use]
pub fn stacked_configs() -> Vec<AcceleratorConfig> {
    let mk = |name: &str, units: u32, per_die_mib: f64, dies: u32| {
        AcceleratorConfig::stacked_3d(name, units, Bytes::from_mebibytes(per_die_mib), dies)
            .expect("static stacking parameters are valid")
    };
    vec![
        mk("3D_1K_2M", UNITS_1K, 2.0, 1),
        mk("3D_1K_4M", UNITS_1K, 2.0, 2),
        mk("3D_1K_8M", UNITS_1K, 2.0, 4),
        mk("3D_2K_4M", UNITS_2K, 4.0, 1),
        mk("3D_2K_8M", UNITS_2K, 4.0, 2),
        mk("3D_2K_16M", UNITS_2K, 4.0, 4),
    ]
}

/// Baseline plus the six 3D configurations, in Fig. 11 order.
#[must_use]
pub fn study_configs() -> Vec<AcceleratorConfig> {
    let mut all = vec![baseline()];
    all.extend(stacked_configs());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryIntegration;

    #[test]
    fn seven_configs_total() {
        let all = study_configs();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].name(), "Baseline_1K_1M");
    }

    #[test]
    fn capacities_match_names() {
        for cfg in stacked_configs() {
            let expected: f64 = cfg
                .name()
                .rsplit('_')
                .next()
                .unwrap()
                .trim_end_matches('M')
                .parse()
                .unwrap();
            assert!(
                (cfg.sram().to_mebibytes() - expected).abs() < 1e-12,
                "{}",
                cfg.name()
            );
        }
    }

    #[test]
    fn per_die_capacity_follows_mac_count() {
        for cfg in stacked_configs() {
            let MemoryIntegration::Stacked3d { dies } = cfg.integration() else {
                panic!("{} should be stacked", cfg.name());
            };
            let per_die = cfg.sram().to_mebibytes() / f64::from(dies);
            if cfg.mac_units() == UNITS_1K {
                assert!((per_die - 2.0).abs() < 1e-12, "{}", cfg.name());
            } else {
                assert_eq!(cfg.mac_units(), UNITS_2K);
                assert!((per_die - 4.0).abs() < 1e-12, "{}", cfg.name());
            }
        }
    }

    #[test]
    fn two_k_designs_have_double_compute() {
        let base = baseline();
        for cfg in stacked_configs() {
            if cfg.name().contains("2K") {
                assert_eq!(cfg.total_macs(), 2 * base.total_macs());
            } else {
                assert_eq!(cfg.total_macs(), base.total_macs());
            }
        }
    }
}
