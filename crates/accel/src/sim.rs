//! Roofline latency/energy simulation of a kernel on an accelerator
//! configuration (the paper's Fig. 5 simulator, rebuilt analytically).
//!
//! * **Latency** is the roofline maximum of compute time
//!   (`MACs / peak throughput`) and DRAM time (`traffic / bandwidth`),
//!   assuming perfect overlap of compute and memory.
//! * **DRAM traffic** is weights + kernel I/O plus a *re-fetch
//!   amplification* term that kicks in when the activation working set
//!   exceeds the on-chip SRAM: tiled dataflows re-fetch activations
//!   super-linearly in the overflow ratio. The term is calibrated so that
//!   growing SRAM from 2 MiB to 32 MiB cuts a super-resolution kernel's
//!   bandwidth demand by roughly the paper's quoted 89.6x.
//! * **Energy** sums MAC, SRAM (capacity-dependent per-access energy, with
//!   a 3D-hop multiplier for stacked memory), and DRAM contributions.

use crate::config::{AcceleratorConfig, MemoryIntegration};
use cordoba_carbon::units::{Bytes, Joules, Seconds, Watts};
use cordoba_workloads::cost::{CostTable, KernelCost};
use cordoba_workloads::kernel::{KernelDescriptor, KernelId};
use serde::{Deserialize, Serialize};

/// Result of simulating one kernel inference on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelSim {
    /// Which kernel was simulated.
    pub kernel: KernelId,
    /// End-to-end latency of one inference.
    pub latency: Seconds,
    /// Dynamic energy of one inference (excludes leakage).
    pub dynamic_energy: Joules,
    /// Bytes moved to/from DRAM.
    pub dram_traffic: Bytes,
    /// Time the compute roofline alone would take.
    pub compute_time: Seconds,
    /// Time the memory roofline alone would take.
    pub memory_time: Seconds,
}

impl KernelSim {
    /// `true` when the kernel is DRAM-bandwidth bound on this config.
    #[must_use]
    pub fn is_memory_bound(&self) -> bool {
        self.memory_time > self.compute_time
    }

    /// Average dynamic power over the inference.
    #[must_use]
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic_energy / self.latency
    }

    /// Sustained DRAM bandwidth demand of this kernel at full rate.
    #[must_use]
    pub fn bandwidth_demand(&self) -> f64 {
        self.dram_traffic.value() / self.latency.value()
    }
}

/// Simulates one inference of `kernel` on `config`.
///
/// # Examples
///
/// ```
/// use cordoba_accel::config::AcceleratorConfig;
/// use cordoba_accel::sim::simulate;
/// use cordoba_carbon::units::Bytes;
/// use cordoba_workloads::kernel::KernelId;
///
/// let cfg = AcceleratorConfig::on_die("a48", 16, Bytes::from_mebibytes(8.0))?;
/// let sim = simulate(&cfg, &KernelId::ResNet50.descriptor());
/// assert!(sim.latency.is_positive());
/// assert!(sim.dynamic_energy.is_positive());
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[must_use]
pub fn simulate(config: &AcceleratorConfig, kernel: &KernelDescriptor) -> KernelSim {
    let t = config.tuning();

    // Compute roofline (utilization depends on kernel parallelism).
    let peak = t.peak_macs_per_second(config.mac_units(), kernel.macs / 1e9);
    let compute_time = Seconds::new(kernel.macs / peak);

    // DRAM traffic: weights stream once; activations move as kernel I/O
    // plus re-fetch amplification when the working set exceeds SRAM.
    let io = kernel.activation * t.io_traffic_fraction + kernel.weights;
    let overflow = kernel.activation.value() / config.sram().value();
    let refetch = if overflow > 1.0 {
        kernel.activation * (t.refetch_scale * (overflow.powf(t.refetch_exponent) - 1.0))
    } else {
        Bytes::ZERO
    };
    let dram_traffic = io + refetch;
    let memory_time: Seconds = dram_traffic / t.dram_bandwidth;

    let latency = compute_time.max(memory_time);

    // Energy.
    let mac_energy = t.mac_energy * kernel.macs;
    let sram_factor = match config.integration() {
        MemoryIntegration::OnDie => 1.0,
        MemoryIntegration::Stacked3d { .. } => t.stacked_sram_energy_factor,
    };
    let sram_bytes = kernel.macs * t.sram_bytes_per_mac;
    let sram_energy = t.sram_energy_per_byte(config.sram()) * sram_bytes * sram_factor;
    let dram_energy = t.dram_energy_per_byte * dram_traffic.value();
    let dynamic_energy = mac_energy + sram_energy + dram_energy;

    KernelSim {
        kernel: kernel.id,
        latency,
        dynamic_energy,
        dram_traffic,
        compute_time,
        memory_time,
    }
}

/// Builds a [`CostTable`] for the given kernels on `config` (leakage power
/// included), ready for the eq. IV.2/IV.4 task evaluation.
#[must_use]
pub fn cost_table(
    config: &AcceleratorConfig,
    kernels: impl IntoIterator<Item = KernelId>,
) -> CostTable {
    let mut table = CostTable::new(config.leakage_power());
    for id in kernels {
        let sim = simulate(config, &id.descriptor());
        table.insert(id, KernelCost::new(sim.latency, sim.dynamic_power()));
    }
    table
}

/// Builds a [`CostTable`] covering all fifteen kernels.
#[must_use]
pub fn full_cost_table(config: &AcceleratorConfig) -> CostTable {
    cost_table(config, KernelId::ALL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_workloads::task::Task;

    fn cfg(units: u32, sram_mib: f64) -> AcceleratorConfig {
        AcceleratorConfig::on_die(
            format!("u{units}s{sram_mib}"),
            units,
            Bytes::from_mebibytes(sram_mib),
        )
        .unwrap()
    }

    #[test]
    fn more_macs_cut_compute_time_sublinearly() {
        let k = KernelId::ResNet50.descriptor();
        let slow = simulate(&cfg(1, 8.0), &k);
        let fast = simulate(&cfg(64, 8.0), &k);
        let speedup = slow.compute_time.value() / fast.compute_time.value();
        // 64x the units: big speedup, but below linear (utilization decay).
        assert!(speedup > 10.0 && speedup < 64.0, "speedup {speedup}");
        assert!(fast.latency < slow.latency);
    }

    #[test]
    fn small_sram_makes_sr_memory_bound() {
        // SR(1024) on 1 MiB SRAM must be savagely memory bound; with 256 MiB
        // more compute bound.
        let k = KernelId::Sr1024.descriptor();
        let starved = simulate(&cfg(16, 1.0), &k);
        assert!(starved.is_memory_bound());
        let fed = simulate(&cfg(16, 512.0), &k);
        assert!(!fed.is_memory_bound());
        assert!(fed.latency < starved.latency);
    }

    #[test]
    fn sram_growth_cuts_bandwidth_demand_by_paper_magnitude() {
        // §V: growing activation SRAM 2 -> 32 MiB cuts the SR bandwidth
        // requirement by 89.6x. Our refetch calibration should land within
        // a factor ~2 of that.
        let k = KernelId::Sr1024.descriptor();
        let at2 = simulate(&cfg(16, 2.0), &k);
        let at32 = simulate(&cfg(16, 32.0), &k);
        let ratio = at2.dram_traffic.value() / at32.dram_traffic.value();
        assert!(
            ratio > 40.0 && ratio < 200.0,
            "bandwidth reduction ratio {ratio}"
        );
    }

    #[test]
    fn fitting_activations_eliminates_refetch() {
        let k = KernelId::ResNet18.descriptor(); // 3 MiB activations
        let fits = simulate(&cfg(8, 4.0), &k);
        let expected_io = k.activation.value() * 0.25 + k.weights.value();
        assert!((fits.dram_traffic.value() - expected_io).abs() < 1.0);
    }

    #[test]
    fn energy_components_monotonic() {
        let k = KernelId::Sr512.descriptor();
        // Bigger SRAM: less DRAM energy, more per-access SRAM energy.
        let small = simulate(&cfg(16, 2.0), &k);
        let big = simulate(&cfg(16, 64.0), &k);
        assert!(big.dram_traffic < small.dram_traffic);
        // Overall, for a spilling kernel, bigger SRAM saves energy here.
        assert!(big.dynamic_energy < small.dynamic_energy);
    }

    #[test]
    fn oversized_sram_wastes_energy_for_small_kernels() {
        // For a kernel that already fits, growing SRAM only raises access
        // energy (and embodied carbon) — the over-provisioning signal that
        // drives tCDP-optimal designs to small SRAM for AI tasks.
        let k = KernelId::MobileNetV2.descriptor(); // 4 MiB
        let right = simulate(&cfg(8, 4.0), &k);
        let bloated = simulate(&cfg(8, 512.0), &k);
        assert!(bloated.dynamic_energy > right.dynamic_energy);
        assert_eq!(bloated.dram_traffic, right.dram_traffic);
    }

    #[test]
    fn stacked_memory_pays_small_energy_premium_only() {
        let k = KernelId::Sr512.descriptor();
        let flat = simulate(&cfg(16, 8.0), &k);
        let stacked = simulate(
            &AcceleratorConfig::stacked_3d("s", 16, Bytes::from_mebibytes(4.0), 2).unwrap(),
            &k,
        );
        // Same SRAM capacity -> same traffic; slightly higher SRAM energy.
        assert_eq!(stacked.dram_traffic, flat.dram_traffic);
        assert!(stacked.dynamic_energy > flat.dynamic_energy);
        assert!(stacked.dynamic_energy.value() < flat.dynamic_energy.value() * 1.2);
    }

    #[test]
    fn cost_table_feeds_task_equations() {
        let c = cfg(16, 8.0);
        let table = full_cost_table(&c);
        assert_eq!(table.len(), 15);
        let task = Task::xr_5_kernels();
        let delay = table.task_delay(&task).unwrap();
        let energy = table.task_energy(&task).unwrap();
        assert!(delay.is_positive());
        assert!(energy.is_positive());
        // Task delay is the sum of kernel latencies.
        let by_hand: Seconds = task
            .kernels()
            .map(|k| simulate(&c, &k.descriptor()).latency)
            .sum();
        assert!((delay.value() - by_hand.value()).abs() / by_hand.value() < 1e-12);
    }

    #[test]
    fn bandwidth_demand_reported() {
        let k = KernelId::Sr1024.descriptor();
        let starved = simulate(&cfg(16, 2.0), &k);
        // Memory-bound kernels demand the full DRAM bandwidth.
        assert!((starved.bandwidth_demand() - 16e9).abs() / 16e9 < 1e-9);
    }

    #[test]
    fn dynamic_power_is_energy_over_latency() {
        let s = simulate(&cfg(8, 8.0), &KernelId::ResNet50.descriptor());
        assert!(
            (s.dynamic_power().value() - s.dynamic_energy.value() / s.latency.value()).abs()
                < 1e-12
        );
    }
}
