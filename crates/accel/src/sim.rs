//! Roofline latency/energy simulation of a kernel on an accelerator
//! configuration (the paper's Fig. 5 simulator, rebuilt analytically).
//!
//! * **Latency** is the roofline maximum of compute time
//!   (`MACs / peak throughput`) and DRAM time (`traffic / bandwidth`),
//!   assuming perfect overlap of compute and memory.
//! * **DRAM traffic** is weights + kernel I/O plus a *re-fetch
//!   amplification* term that kicks in when the activation working set
//!   exceeds the on-chip SRAM: tiled dataflows re-fetch activations
//!   super-linearly in the overflow ratio. The term is calibrated so that
//!   growing SRAM from 2 MiB to 32 MiB cuts a super-resolution kernel's
//!   bandwidth demand by roughly the paper's quoted 89.6x.
//! * **Energy** sums MAC, SRAM (capacity-dependent per-access energy, with
//!   a 3D-hop multiplier for stacked memory), and DRAM contributions.

use crate::config::{AcceleratorConfig, MemoryIntegration};
use cordoba_carbon::units::{Bytes, Joules, Seconds, Watts};
use cordoba_workloads::cost::{CostTable, KernelCost, MissingKernel};
use cordoba_workloads::kernel::{KernelDescriptor, KernelId};
use cordoba_workloads::task::Task;
use serde::{Deserialize, Serialize};

/// Result of simulating one kernel inference on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelSim {
    /// Which kernel was simulated.
    pub kernel: KernelId,
    /// End-to-end latency of one inference.
    pub latency: Seconds,
    /// Dynamic energy of one inference (excludes leakage).
    pub dynamic_energy: Joules,
    /// Bytes moved to/from DRAM.
    pub dram_traffic: Bytes,
    /// Time the compute roofline alone would take.
    pub compute_time: Seconds,
    /// Time the memory roofline alone would take.
    pub memory_time: Seconds,
}

impl KernelSim {
    /// `true` when the kernel is DRAM-bandwidth bound on this config.
    #[must_use]
    pub fn is_memory_bound(&self) -> bool {
        self.memory_time > self.compute_time
    }

    /// Average dynamic power over the inference.
    #[must_use]
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic_energy / self.latency
    }

    /// Sustained DRAM bandwidth demand of this kernel at full rate.
    #[must_use]
    pub fn bandwidth_demand(&self) -> f64 {
        self.dram_traffic.value() / self.latency.value()
    }
}

/// Simulates one inference of `kernel` on `config`.
///
/// # Examples
///
/// ```
/// use cordoba_accel::config::AcceleratorConfig;
/// use cordoba_accel::sim::simulate;
/// use cordoba_carbon::units::Bytes;
/// use cordoba_workloads::kernel::KernelId;
///
/// let cfg = AcceleratorConfig::on_die("a48", 16, Bytes::from_mebibytes(8.0))?;
/// let sim = simulate(&cfg, &KernelId::ResNet50.descriptor());
/// assert!(sim.latency.is_positive());
/// assert!(sim.dynamic_energy.is_positive());
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[must_use]
pub fn simulate(config: &AcceleratorConfig, kernel: &KernelDescriptor) -> KernelSim {
    let t = config.tuning();

    // Compute roofline (utilization depends on kernel parallelism).
    let peak = t.peak_macs_per_second(config.mac_units(), kernel.macs / 1e9);
    let compute_time = Seconds::new(kernel.macs / peak);

    // DRAM traffic: weights stream once; activations move as kernel I/O
    // plus re-fetch amplification when the working set exceeds SRAM.
    let io = kernel.activation * t.io_traffic_fraction + kernel.weights;
    let overflow = kernel.activation.value() / config.sram().value();
    let refetch = if overflow > 1.0 {
        kernel.activation * (t.refetch_scale * (overflow.powf(t.refetch_exponent) - 1.0))
    } else {
        Bytes::ZERO
    };
    let dram_traffic = io + refetch;
    let memory_time: Seconds = dram_traffic / t.dram_bandwidth;

    let latency = compute_time.max(memory_time);

    // Energy.
    let mac_energy = t.mac_energy * kernel.macs;
    let sram_factor = match config.integration() {
        MemoryIntegration::OnDie => 1.0,
        MemoryIntegration::Stacked3d { .. } => t.stacked_sram_energy_factor,
    };
    let sram_bytes = kernel.macs * t.sram_bytes_per_mac;
    let sram_energy = t.sram_energy_per_byte(config.sram()) * sram_bytes * sram_factor;
    let dram_energy = t.dram_energy_per_byte * dram_traffic.value();
    let dynamic_energy = mac_energy + sram_energy + dram_energy;

    KernelSim {
        kernel: kernel.id,
        latency,
        dynamic_energy,
        dram_traffic,
        compute_time,
        memory_time,
    }
}

/// Builds a [`CostTable`] for the given kernels on `config` (leakage power
/// included), ready for the eq. IV.2/IV.4 task evaluation.
#[must_use]
pub fn cost_table(
    config: &AcceleratorConfig,
    kernels: impl IntoIterator<Item = KernelId>,
) -> CostTable {
    let mut table = CostTable::new(config.leakage_power());
    for id in kernels {
        let sim = simulate(config, &id.descriptor());
        table.insert(id, KernelCost::new(sim.latency, sim.dynamic_power()));
    }
    table
}

/// Builds a [`CostTable`] covering all fifteen kernels.
#[must_use]
pub fn full_cost_table(config: &AcceleratorConfig) -> CostTable {
    cost_table(config, KernelId::ALL)
}

/// Per-kernel inputs of the batch simulator, laid out as contiguous arrays
/// with the descriptor lookup and the utilization-knee clamp hoisted out of
/// the per-config loop.
///
/// Kernels passed by id are deduplicated (first occurrence wins), so a slab
/// built through [`KernelSlab::new`] or [`KernelSlab::full`] never exceeds
/// [`KernelSlab::CAP`] kernels — the invariant [`SlabCosts`] relies on.
#[derive(Debug, Clone)]
pub struct KernelSlab {
    ids: Vec<KernelId>,
    /// MACs per inference.
    macs: Vec<f64>,
    /// `(macs / 1e9).clamp(0.5, 16.0)` — the knee scale of
    /// [`crate::params::TechTuning::achieved_utilization`].
    gmacs_clamped: Vec<f64>,
    /// Peak activation footprint in bytes.
    activation: Vec<f64>,
    /// Weight footprint in bytes.
    weights: Vec<f64>,
}

impl KernelSlab {
    /// Upper bound on the kernel count of a deduplicated slab (the full
    /// kernel catalog).
    pub const CAP: usize = KernelId::ALL.len();

    /// Lays out the descriptors of the given kernels, deduplicating by id
    /// (first occurrence wins).
    #[must_use]
    pub fn new(kernels: impl IntoIterator<Item = KernelId>) -> Self {
        let mut slab = Self {
            ids: Vec::new(),
            macs: Vec::new(),
            gmacs_clamped: Vec::new(),
            activation: Vec::new(),
            weights: Vec::new(),
        };
        for id in kernels {
            if slab.ids.contains(&id) {
                continue;
            }
            let k = id.descriptor();
            slab.ids.push(id);
            slab.macs.push(k.macs);
            slab.gmacs_clamped.push((k.macs / 1e9).clamp(0.5, 16.0));
            slab.activation.push(k.activation.value());
            slab.weights.push(k.weights.value());
        }
        slab
    }

    /// A slab covering all fifteen kernels, in [`KernelId::ALL`] order.
    #[must_use]
    pub fn full() -> Self {
        Self::new(KernelId::ALL)
    }

    /// Number of kernels in the slab.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the slab holds no kernels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The kernel ids, in slab order.
    #[must_use]
    pub fn ids(&self) -> &[KernelId] {
        &self.ids
    }

    /// Slab index of a kernel, if present.
    #[must_use]
    pub fn index_of(&self, id: KernelId) -> Option<usize> {
        self.ids.iter().position(|k| *k == id)
    }
}

/// Struct-of-arrays layout of the per-config simulator inputs: every tuning
/// parameter the roofline model reads, derived once per configuration so
/// the config × kernel inner loop touches only contiguous `f64` arrays.
///
/// Hoisted per config (versus [`simulate`], which re-derives them per
/// kernel): the kernel-independent throughput factor
/// `units x MACS_PER_UNIT x clock`, the capacity-dependent SRAM energy per
/// byte (a `powf`), the 3D-stacking energy factor, and the leakage power.
/// Every hoist preserves the scalar path's exact operation order, so batch
/// results are bit-identical to per-kernel [`simulate`] calls.
#[derive(Debug, Clone)]
pub struct ConfigBatch {
    /// `units x MACS_PER_UNIT x clock` — peak throughput before the
    /// utilization factor.
    rate: Vec<f64>,
    /// MAC units as `f64`.
    units: Vec<f64>,
    utilization: Vec<f64>,
    knee_units: Vec<f64>,
    /// SRAM capacity in bytes.
    sram: Vec<f64>,
    io_fraction: Vec<f64>,
    refetch_scale: Vec<f64>,
    refetch_exponent: Vec<f64>,
    dram_bandwidth: Vec<f64>,
    mac_energy: Vec<f64>,
    /// Capacity-dependent SRAM energy per byte (the hoisted `powf`).
    sram_energy_per_byte: Vec<f64>,
    /// 1.0 on-die, the stacking factor for 3D memory.
    sram_factor: Vec<f64>,
    sram_bytes_per_mac: Vec<f64>,
    dram_energy_per_byte: Vec<f64>,
    /// Leakage power in watts.
    leakage: Vec<f64>,
}

impl ConfigBatch {
    /// Derives the per-config arrays from a configuration list.
    #[must_use]
    pub fn new(configs: &[AcceleratorConfig]) -> Self {
        let n = configs.len();
        let mut b = Self {
            rate: Vec::with_capacity(n),
            units: Vec::with_capacity(n),
            utilization: Vec::with_capacity(n),
            knee_units: Vec::with_capacity(n),
            sram: Vec::with_capacity(n),
            io_fraction: Vec::with_capacity(n),
            refetch_scale: Vec::with_capacity(n),
            refetch_exponent: Vec::with_capacity(n),
            dram_bandwidth: Vec::with_capacity(n),
            mac_energy: Vec::with_capacity(n),
            sram_energy_per_byte: Vec::with_capacity(n),
            sram_factor: Vec::with_capacity(n),
            sram_bytes_per_mac: Vec::with_capacity(n),
            dram_energy_per_byte: Vec::with_capacity(n),
            leakage: Vec::with_capacity(n),
        };
        for config in configs {
            let t = config.tuning();
            let units = f64::from(config.mac_units());
            b.rate
                .push(units * f64::from(crate::params::MACS_PER_UNIT) * t.clock.value());
            b.units.push(units);
            b.utilization.push(t.utilization);
            b.knee_units.push(t.utilization_knee_units);
            b.sram.push(config.sram().value());
            b.io_fraction.push(t.io_traffic_fraction);
            b.refetch_scale.push(t.refetch_scale);
            b.refetch_exponent.push(t.refetch_exponent);
            b.dram_bandwidth.push(t.dram_bandwidth.value());
            b.mac_energy.push(t.mac_energy.value());
            b.sram_energy_per_byte
                .push(t.sram_energy_per_byte(config.sram()).value());
            b.sram_factor.push(match config.integration() {
                MemoryIntegration::OnDie => 1.0,
                MemoryIntegration::Stacked3d { .. } => t.stacked_sram_energy_factor,
            });
            b.sram_bytes_per_mac.push(t.sram_bytes_per_mac);
            b.dram_energy_per_byte.push(t.dram_energy_per_byte.value());
            b.leakage.push(config.leakage_power().value());
        }
        b
    }

    /// Number of configurations in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rate.len()
    }

    /// `true` when the batch holds no configurations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rate.is_empty()
    }

    /// Leakage power of configuration `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range.
    #[must_use]
    pub fn leakage_power(&self, c: usize) -> Watts {
        Watts::new(self.leakage[c])
    }

    /// Simulates kernel `k` of `slab` on configuration `c`, replicating the
    /// scalar [`simulate`] operation for operation — same `f64` op order,
    /// same results to the last bit.
    ///
    /// # Panics
    ///
    /// Panics when `c` or `k` is out of range.
    #[must_use]
    pub fn simulate_at(&self, c: usize, slab: &KernelSlab, k: usize) -> KernelSim {
        // Compute roofline: peak = (units x MACS x clock) x utilization,
        // with the first three factors hoisted into `rate` (the scalar path
        // multiplies left to right, so the grouping is identical).
        let util = self.utilization[c]
            / (1.0 + self.units[c] / (self.knee_units[c] * slab.gmacs_clamped[k]));
        let peak = self.rate[c] * util;
        let compute_time = slab.macs[k] / peak;

        // DRAM traffic with SRAM-overflow re-fetch amplification.
        let io = slab.activation[k] * self.io_fraction[c] + slab.weights[k];
        let overflow = slab.activation[k] / self.sram[c];
        let refetch = if overflow > 1.0 {
            slab.activation[k]
                * (self.refetch_scale[c] * (overflow.powf(self.refetch_exponent[c]) - 1.0))
        } else {
            0.0
        };
        let dram_traffic = io + refetch;
        let memory_time = dram_traffic / self.dram_bandwidth[c];
        let latency = compute_time.max(memory_time);

        // Energy: MAC + SRAM (hoisted capacity-dependent per-byte energy,
        // hoisted stacking factor) + DRAM.
        let mac_energy = self.mac_energy[c] * slab.macs[k];
        let sram_bytes = slab.macs[k] * self.sram_bytes_per_mac[c];
        let sram_energy = self.sram_energy_per_byte[c] * sram_bytes * self.sram_factor[c];
        let dram_energy = self.dram_energy_per_byte[c] * dram_traffic;
        let dynamic_energy = mac_energy + sram_energy + dram_energy;

        KernelSim {
            kernel: slab.ids[k],
            latency: Seconds::new(latency),
            dynamic_energy: Joules::new(dynamic_energy),
            dram_traffic: Bytes::new(dram_traffic),
            compute_time: Seconds::new(compute_time),
            memory_time: Seconds::new(memory_time),
        }
    }

    /// Delay and dynamic power of every slab kernel on configuration `c`,
    /// in one stack-allocated pass (no heap traffic per configuration).
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range or the slab exceeds
    /// [`KernelSlab::CAP`] kernels.
    #[must_use]
    pub fn slab_costs(&self, c: usize, slab: &KernelSlab) -> SlabCosts {
        let mut costs = [KernelCost::new(Seconds::ZERO, Watts::ZERO); KernelSlab::CAP];
        for (k, slot) in costs.iter_mut().enumerate().take(slab.len()) {
            let sim = self.simulate_at(c, slab, k);
            *slot = KernelCost::new(sim.latency, sim.dynamic_power());
        }
        SlabCosts {
            costs,
            len: slab.len(),
        }
    }

    /// Task delay and energy of configuration `c` (paper eq. IV.2/IV.4),
    /// replicating [`cordoba_workloads::cost::CostTable::task_delay`] and
    /// [`CostTable::task_energy`] operation for operation over the plan's
    /// entries — including re-deriving each kernel's dynamic energy as
    /// `power x delay` rather than reusing the simulator's energy, because
    /// `e / d * d` is not `e` in floating point.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range or `costs` was built from a slab
    /// shorter than the plan's kernel indices.
    #[must_use]
    pub fn task_cost(&self, c: usize, costs: &SlabCosts, plan: &TaskPlan) -> (Seconds, Joules) {
        let mut delay = Seconds::ZERO;
        for &(k, calls) in &plan.entries {
            delay += costs.get(k).delay * calls;
        }
        let mut dynamic = Joules::ZERO;
        for &(k, calls) in &plan.entries {
            dynamic += costs.get(k).dynamic_energy() * calls;
        }
        let energy = dynamic + Watts::new(self.leakage[c]) * delay;
        (delay, energy)
    }
}

/// Stack-allocated per-kernel costs of one configuration over one
/// [`KernelSlab`] — the batch pipeline's replacement for the scalar path's
/// `BTreeMap`-backed [`CostTable`].
#[derive(Debug, Clone, Copy)]
pub struct SlabCosts {
    costs: [KernelCost; KernelSlab::CAP],
    len: usize,
}

impl SlabCosts {
    /// Cost of the kernel at slab index `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    #[must_use]
    pub fn get(&self, k: usize) -> KernelCost {
        assert!(k < self.len, "slab index {k} out of range ({})", self.len);
        self.costs[k]
    }

    /// The costs in slab order.
    #[must_use]
    pub fn as_slice(&self) -> &[KernelCost] {
        &self.costs[..self.len]
    }
}

/// A task resolved against a [`KernelSlab`]: the task's `(kernel, calls)`
/// entries in declaration order, with kernels replaced by slab indices so
/// the evaluation loop does no map lookups.
#[derive(Debug, Clone)]
pub struct TaskPlan {
    entries: Vec<(usize, f64)>,
}

impl TaskPlan {
    /// Resolves `task` against `slab`, preserving the task's entry order
    /// (which [`CostTable::task_delay`] / [`CostTable::task_energy`] sum
    /// in).
    ///
    /// # Errors
    ///
    /// Returns [`MissingKernel`] when the task references a kernel the slab
    /// does not carry.
    pub fn new(task: &Task, slab: &KernelSlab) -> Result<Self, MissingKernel> {
        let entries = task
            .entries()
            .map(|(kernel, calls)| {
                slab.index_of(kernel)
                    .map(|k| (k, calls))
                    .ok_or(MissingKernel { kernel })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { entries })
    }

    /// Number of `(kernel, calls)` entries in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the plan has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Simulates every kernel of `slab` on every configuration, row-major by
/// configuration: entry `c * slab.len() + k` is kernel `k` on config `c`,
/// bit-identical to `simulate(&configs[c], &slab.ids()[k].descriptor())`.
#[must_use]
pub fn simulate_batch(configs: &[AcceleratorConfig], slab: &KernelSlab) -> Vec<KernelSim> {
    let batch = ConfigBatch::new(configs);
    let mut out = Vec::with_capacity(configs.len() * slab.len());
    for c in 0..batch.len() {
        for k in 0..slab.len() {
            out.push(batch.simulate_at(c, slab, k));
        }
    }
    out
}

/// Batch sibling of [`full_cost_table`]: one [`CostTable`] per
/// configuration, each bit-identical to `full_cost_table(&configs[c])`,
/// with descriptor lookup and tuning derivation done once for the whole
/// batch.
#[must_use]
pub fn full_cost_table_batch(configs: &[AcceleratorConfig]) -> Vec<CostTable> {
    let slab = KernelSlab::full();
    let batch = ConfigBatch::new(configs);
    (0..batch.len())
        .map(|c| {
            let mut table = CostTable::new(batch.leakage_power(c));
            for k in 0..slab.len() {
                let sim = batch.simulate_at(c, &slab, k);
                table.insert(
                    slab.ids[k],
                    KernelCost::new(sim.latency, sim.dynamic_power()),
                );
            }
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_workloads::task::Task;

    fn cfg(units: u32, sram_mib: f64) -> AcceleratorConfig {
        AcceleratorConfig::on_die(
            format!("u{units}s{sram_mib}"),
            units,
            Bytes::from_mebibytes(sram_mib),
        )
        .unwrap()
    }

    #[test]
    fn more_macs_cut_compute_time_sublinearly() {
        let k = KernelId::ResNet50.descriptor();
        let slow = simulate(&cfg(1, 8.0), &k);
        let fast = simulate(&cfg(64, 8.0), &k);
        let speedup = slow.compute_time.value() / fast.compute_time.value();
        // 64x the units: big speedup, but below linear (utilization decay).
        assert!(speedup > 10.0 && speedup < 64.0, "speedup {speedup}");
        assert!(fast.latency < slow.latency);
    }

    #[test]
    fn small_sram_makes_sr_memory_bound() {
        // SR(1024) on 1 MiB SRAM must be savagely memory bound; with 256 MiB
        // more compute bound.
        let k = KernelId::Sr1024.descriptor();
        let starved = simulate(&cfg(16, 1.0), &k);
        assert!(starved.is_memory_bound());
        let fed = simulate(&cfg(16, 512.0), &k);
        assert!(!fed.is_memory_bound());
        assert!(fed.latency < starved.latency);
    }

    #[test]
    fn sram_growth_cuts_bandwidth_demand_by_paper_magnitude() {
        // §V: growing activation SRAM 2 -> 32 MiB cuts the SR bandwidth
        // requirement by 89.6x. Our refetch calibration should land within
        // a factor ~2 of that.
        let k = KernelId::Sr1024.descriptor();
        let at2 = simulate(&cfg(16, 2.0), &k);
        let at32 = simulate(&cfg(16, 32.0), &k);
        let ratio = at2.dram_traffic.value() / at32.dram_traffic.value();
        assert!(
            ratio > 40.0 && ratio < 200.0,
            "bandwidth reduction ratio {ratio}"
        );
    }

    #[test]
    fn fitting_activations_eliminates_refetch() {
        let k = KernelId::ResNet18.descriptor(); // 3 MiB activations
        let fits = simulate(&cfg(8, 4.0), &k);
        let expected_io = k.activation.value() * 0.25 + k.weights.value();
        assert!((fits.dram_traffic.value() - expected_io).abs() < 1.0);
    }

    #[test]
    fn energy_components_monotonic() {
        let k = KernelId::Sr512.descriptor();
        // Bigger SRAM: less DRAM energy, more per-access SRAM energy.
        let small = simulate(&cfg(16, 2.0), &k);
        let big = simulate(&cfg(16, 64.0), &k);
        assert!(big.dram_traffic < small.dram_traffic);
        // Overall, for a spilling kernel, bigger SRAM saves energy here.
        assert!(big.dynamic_energy < small.dynamic_energy);
    }

    #[test]
    fn oversized_sram_wastes_energy_for_small_kernels() {
        // For a kernel that already fits, growing SRAM only raises access
        // energy (and embodied carbon) — the over-provisioning signal that
        // drives tCDP-optimal designs to small SRAM for AI tasks.
        let k = KernelId::MobileNetV2.descriptor(); // 4 MiB
        let right = simulate(&cfg(8, 4.0), &k);
        let bloated = simulate(&cfg(8, 512.0), &k);
        assert!(bloated.dynamic_energy > right.dynamic_energy);
        assert_eq!(bloated.dram_traffic, right.dram_traffic);
    }

    #[test]
    fn stacked_memory_pays_small_energy_premium_only() {
        let k = KernelId::Sr512.descriptor();
        let flat = simulate(&cfg(16, 8.0), &k);
        let stacked = simulate(
            &AcceleratorConfig::stacked_3d("s", 16, Bytes::from_mebibytes(4.0), 2).unwrap(),
            &k,
        );
        // Same SRAM capacity -> same traffic; slightly higher SRAM energy.
        assert_eq!(stacked.dram_traffic, flat.dram_traffic);
        assert!(stacked.dynamic_energy > flat.dynamic_energy);
        assert!(stacked.dynamic_energy.value() < flat.dynamic_energy.value() * 1.2);
    }

    #[test]
    fn cost_table_feeds_task_equations() {
        let c = cfg(16, 8.0);
        let table = full_cost_table(&c);
        assert_eq!(table.len(), 15);
        let task = Task::xr_5_kernels();
        let delay = table.task_delay(&task).unwrap();
        let energy = table.task_energy(&task).unwrap();
        assert!(delay.is_positive());
        assert!(energy.is_positive());
        // Task delay is the sum of kernel latencies.
        let by_hand: Seconds = task
            .kernels()
            .map(|k| simulate(&c, &k.descriptor()).latency)
            .sum();
        assert!((delay.value() - by_hand.value()).abs() / by_hand.value() < 1e-12);
    }

    #[test]
    fn bandwidth_demand_reported() {
        let k = KernelId::Sr1024.descriptor();
        let starved = simulate(&cfg(16, 2.0), &k);
        // Memory-bound kernels demand the full DRAM bandwidth.
        assert!((starved.bandwidth_demand() - 16e9).abs() / 16e9 < 1e-9);
    }

    /// A small but shape-diverse batch: on-die and stacked, overflowing and
    /// fitting SRAM, tiny and huge arrays.
    fn mixed_batch() -> Vec<AcceleratorConfig> {
        vec![
            cfg(1, 1.0),
            cfg(16, 8.0),
            cfg(64, 512.0),
            AcceleratorConfig::stacked_3d("s2", 16, Bytes::from_mebibytes(4.0), 2).unwrap(),
            AcceleratorConfig::stacked_3d("s4", 128, Bytes::from_mebibytes(32.0), 4).unwrap(),
        ]
    }

    fn sim_bits(s: &KernelSim) -> [u64; 5] {
        [
            s.latency.value().to_bits(),
            s.dynamic_energy.value().to_bits(),
            s.dram_traffic.value().to_bits(),
            s.compute_time.value().to_bits(),
            s.memory_time.value().to_bits(),
        ]
    }

    #[test]
    fn batch_simulation_is_bit_identical_to_scalar() {
        let configs = mixed_batch();
        let slab = KernelSlab::full();
        let sims = simulate_batch(&configs, &slab);
        assert_eq!(sims.len(), configs.len() * slab.len());
        for (c, config) in configs.iter().enumerate() {
            for (k, &id) in slab.ids().iter().enumerate() {
                let scalar = simulate(config, &id.descriptor());
                let batch = &sims[c * slab.len() + k];
                assert_eq!(batch.kernel, scalar.kernel);
                assert_eq!(
                    sim_bits(batch),
                    sim_bits(&scalar),
                    "config {} kernel {id}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn batch_cost_tables_are_bit_identical_to_scalar() {
        let configs = mixed_batch();
        let tables = full_cost_table_batch(&configs);
        assert_eq!(tables.len(), configs.len());
        for (config, table) in configs.iter().zip(&tables) {
            let scalar = full_cost_table(config);
            assert_eq!(table.leakage_power, scalar.leakage_power);
            for id in KernelId::ALL {
                let b = table.get(id).unwrap();
                let s = scalar.get(id).unwrap();
                assert_eq!(b.delay.value().to_bits(), s.delay.value().to_bits());
                assert_eq!(
                    b.dynamic_power.value().to_bits(),
                    s.dynamic_power.value().to_bits()
                );
            }
        }
    }

    #[test]
    fn task_cost_matches_cost_table_equations_bit_for_bit() {
        let configs = mixed_batch();
        let batch = ConfigBatch::new(&configs);
        for task in [
            Task::all_kernels(),
            Task::ai_5_kernels(),
            Task::xr_5_kernels(),
            Task::xr_10_kernels(),
        ] {
            let slab = KernelSlab::new(task.kernels());
            let plan = TaskPlan::new(&task, &slab).unwrap();
            assert_eq!(plan.len(), task.kernels().count());
            for (c, config) in configs.iter().enumerate() {
                let costs = batch.slab_costs(c, &slab);
                let (delay, energy) = batch.task_cost(c, &costs, &plan);
                let table = full_cost_table(config);
                let want_delay = table.task_delay(&task).unwrap();
                let want_energy = table.task_energy(&task).unwrap();
                assert_eq!(
                    delay.value().to_bits(),
                    want_delay.value().to_bits(),
                    "{} delay on {}",
                    task.name(),
                    config.name()
                );
                assert_eq!(
                    energy.value().to_bits(),
                    want_energy.value().to_bits(),
                    "{} energy on {}",
                    task.name(),
                    config.name()
                );
            }
        }
    }

    #[test]
    fn slab_dedups_and_resolves_indices() {
        let slab = KernelSlab::new([KernelId::Sr512, KernelId::ResNet18, KernelId::Sr512]);
        assert_eq!(slab.len(), 2);
        assert!(!slab.is_empty());
        assert_eq!(slab.index_of(KernelId::Sr512), Some(0));
        assert_eq!(slab.index_of(KernelId::ResNet18), Some(1));
        assert_eq!(slab.index_of(KernelId::UNet), None);
        // A plan against a slab missing one of the task's kernels fails.
        let task = Task::uniform("u", [KernelId::UNet]).unwrap();
        assert!(TaskPlan::new(&task, &slab).is_err());
    }

    #[test]
    fn dynamic_power_is_energy_over_latency() {
        let s = simulate(&cfg(8, 8.0), &KernelId::ResNet50.descriptor());
        assert!(
            (s.dynamic_power().value() - s.dynamic_energy.value() / s.latency.value()).abs()
                < 1e-12
        );
    }
}
