//! Accelerator configurations: MAC array size, activation SRAM, and memory
//! integration style (Fig. 5 hardware template).

use crate::params::{TechTuning, MACS_PER_UNIT};
use cordoba_carbon::embodied::{Assembly, Die, EmbodiedModel};
use cordoba_carbon::fab::ProcessNode;
use cordoba_carbon::integral::{operational_carbon_exact, CiIntegral};
use cordoba_carbon::lifetime::UsageProfile;
use cordoba_carbon::operational::DutyCycledPower;
use cordoba_carbon::units::{
    Bytes, GramsCo2e, Seconds, SquareCentimeters, SquareMillimeters, Watts,
};
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the activation memory is integrated with the logic die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryIntegration {
    /// Conventional 2D: the SRAM shares the logic die.
    OnDie,
    /// 3D stacking \[54\]: separately fabricated SRAM dice hybrid-bonded on
    /// top of the logic die, `dies` tiers deep.
    Stacked3d {
        /// Number of memory dice in the stack.
        dies: u32,
    },
}

impl MemoryIntegration {
    /// `true` for 3D-stacked configurations.
    #[must_use]
    pub fn is_stacked(self) -> bool {
        matches!(self, Self::Stacked3d { .. })
    }
}

/// One hardware accelerator design point.
///
/// # Examples
///
/// ```
/// use cordoba_accel::config::AcceleratorConfig;
/// use cordoba_carbon::units::Bytes;
///
/// let cfg = AcceleratorConfig::on_die("a48", 16, Bytes::from_mebibytes(8.0))?;
/// assert_eq!(cfg.mac_units(), 16);
/// assert!(cfg.total_area().value() > 0.0);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    name: String,
    mac_units: u32,
    sram: Bytes,
    integration: MemoryIntegration,
    tuning: TechTuning,
}

impl AcceleratorConfig {
    /// Fractional die-area overhead for TSV/hybrid-bond pads on each die of
    /// a 3D stack.
    pub const TSV_AREA_OVERHEAD: f64 = 0.03;
    /// Yield of each 3D bonding interface.
    pub const BOND_YIELD: f64 = 0.99;

    /// Creates a conventional 2D configuration at 7 nm.
    ///
    /// # Errors
    ///
    /// Returns an error if `mac_units` is zero or `sram` is not positive.
    pub fn on_die(
        name: impl Into<String>,
        mac_units: u32,
        sram: Bytes,
    ) -> Result<Self, CarbonError> {
        Self::with_tuning(
            name,
            mac_units,
            sram,
            MemoryIntegration::OnDie,
            TechTuning::n7(),
        )
    }

    /// Creates a 3D-stacked configuration at 7 nm with `dies` memory dice
    /// of `sram_per_die` each.
    ///
    /// # Errors
    ///
    /// Returns an error if `mac_units` or `dies` is zero or the SRAM size
    /// is not positive.
    pub fn stacked_3d(
        name: impl Into<String>,
        mac_units: u32,
        sram_per_die: Bytes,
        dies: u32,
    ) -> Result<Self, CarbonError> {
        CarbonError::require_positive("memory dies", f64::from(dies))?;
        Self::with_tuning(
            name,
            mac_units,
            sram_per_die * f64::from(dies),
            MemoryIntegration::Stacked3d { dies },
            TechTuning::n7(),
        )
    }

    /// Creates a configuration with explicit integration and tuning.
    ///
    /// # Errors
    ///
    /// Returns an error if `mac_units` is zero or `sram` is not positive.
    pub fn with_tuning(
        name: impl Into<String>,
        mac_units: u32,
        sram: Bytes,
        integration: MemoryIntegration,
        tuning: TechTuning,
    ) -> Result<Self, CarbonError> {
        CarbonError::require_positive("mac units", f64::from(mac_units))?;
        CarbonError::require_positive("sram bytes", sram.value())?;
        Ok(Self {
            name: name.into(),
            mac_units,
            sram,
            integration,
            tuning,
        })
    }

    /// The configuration's name (e.g. `"a48"` or `"3D_2K_8M"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of MAC units (each [`MACS_PER_UNIT`] scalar MACs).
    #[must_use]
    pub fn mac_units(&self) -> u32 {
        self.mac_units
    }

    /// Total scalar MAC count.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        u64::from(self.mac_units) * u64::from(MACS_PER_UNIT)
    }

    /// Total activation SRAM capacity.
    #[must_use]
    pub fn sram(&self) -> Bytes {
        self.sram
    }

    /// How the memory is integrated.
    #[must_use]
    pub fn integration(&self) -> MemoryIntegration {
        self.integration
    }

    /// The technology tuning in effect.
    #[must_use]
    pub fn tuning(&self) -> &TechTuning {
        &self.tuning
    }

    /// The process node of the design.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.tuning.node
    }

    /// Logic-die area: MAC array + base overhead, plus the SRAM when it is
    /// on-die.
    #[must_use]
    pub fn logic_die_area(&self) -> SquareCentimeters {
        let mut mm2 =
            f64::from(self.mac_units) * self.tuning.mac_unit_area_mm2 + self.tuning.base_area_mm2;
        if self.integration == MemoryIntegration::OnDie {
            mm2 += self.sram.to_mebibytes() * self.tuning.sram_area_mm2_per_mib;
        }
        SquareMillimeters::new(mm2).to_square_centimeters()
    }

    /// Area of each memory die in a 3D stack (zero for 2D designs).
    #[must_use]
    pub fn memory_die_area(&self) -> SquareCentimeters {
        match self.integration {
            MemoryIntegration::OnDie => SquareCentimeters::ZERO,
            MemoryIntegration::Stacked3d { dies } => {
                let per_die_mib = self.sram.to_mebibytes() / f64::from(dies);
                SquareMillimeters::new(per_die_mib * self.tuning.sram_area_mm2_per_mib)
                    .to_square_centimeters()
            }
        }
    }

    /// Total silicon area across all dice (before TSV overhead).
    #[must_use]
    pub fn total_area(&self) -> SquareCentimeters {
        match self.integration {
            MemoryIntegration::OnDie => self.logic_die_area(),
            MemoryIntegration::Stacked3d { dies } => {
                self.logic_die_area() + self.memory_die_area() * f64::from(dies)
            }
        }
    }

    /// Leakage power of the whole accelerator.
    #[must_use]
    pub fn leakage_power(&self) -> Watts {
        self.tuning.leakage_base
            + self.tuning.leakage_per_mac_unit * f64::from(self.mac_units)
            + self.tuning.leakage_per_sram_mib * self.sram.to_mebibytes()
    }

    /// Exact lifetime operational carbon under a time-varying grid: the
    /// accelerator draws `active` power for the usage profile's active
    /// fraction of each day and its own [leakage
    /// power](Self::leakage_power) the rest, integrated against `ci` over
    /// the full deployed lifetime with the closed-form kernel
    /// ([`operational_carbon_exact`]) — no sampling error, O(days) segment
    /// visits.
    ///
    /// # Errors
    ///
    /// Returns an error when `active` is negative (duty-cycle validation).
    pub fn lifetime_operational_carbon(
        &self,
        active: Watts,
        usage: &UsageProfile,
        ci: &dyn CiIntegral,
    ) -> Result<GramsCo2e, CarbonError> {
        let profile = DutyCycledPower::new(
            active,
            self.leakage_power(),
            Seconds::from_days(1.0),
            usage.active_fraction(),
        )?;
        Ok(operational_carbon_exact(ci, &profile, usage.lifetime()))
    }

    /// The dice of this design, for embodied-carbon accounting.
    ///
    /// # Errors
    ///
    /// Propagates die-construction errors (cannot occur for validated
    /// configurations).
    pub fn assembly(&self) -> Result<Assembly, CarbonError> {
        let node = self.tuning.node;
        match self.integration {
            MemoryIntegration::OnDie => Assembly::new(
                vec![Die::new(
                    format!("{}-logic", self.name),
                    self.logic_die_area(),
                    node,
                )?],
                0.0,
                1.0,
                GramsCo2e::ZERO,
            ),
            MemoryIntegration::Stacked3d { dies } => {
                let mut stack = vec![Die::new(
                    format!("{}-logic", self.name),
                    self.logic_die_area(),
                    node,
                )?];
                for i in 0..dies {
                    stack.push(Die::new(
                        format!("{}-mem{}", self.name, i),
                        self.memory_die_area(),
                        node,
                    )?);
                }
                Assembly::new(
                    stack,
                    Self::TSV_AREA_OVERHEAD,
                    Self::BOND_YIELD,
                    GramsCo2e::new(5.0),
                )
            }
        }
    }

    /// Embodied carbon of manufacturing this accelerator.
    ///
    /// # Errors
    ///
    /// Propagates assembly-construction errors (cannot occur for validated
    /// configurations).
    pub fn embodied_carbon(&self, model: &EmbodiedModel) -> Result<GramsCo2e, CarbonError> {
        Ok(model.assembly_carbon(&self.assembly()?))
    }

    /// The `CI_fab`-separable breakdown of this accelerator's embodied
    /// carbon (for elimination when the fab's grid intensity is unknown).
    ///
    /// # Errors
    ///
    /// Propagates assembly-construction errors (cannot occur for validated
    /// configurations).
    pub fn embodied_breakdown(
        &self,
        model: &EmbodiedModel,
    ) -> Result<cordoba_carbon::embodied::EmbodiedBreakdown, CarbonError> {
        Ok(model.assembly_breakdown(&self.assembly()?))
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} MAC units, {:.0} MiB SRAM{})",
            self.name,
            self.mac_units,
            self.sram.to_mebibytes(),
            if self.integration.is_stacked() {
                ", 3D"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(units: u32, sram_mib: f64) -> AcceleratorConfig {
        AcceleratorConfig::on_die("t", units, Bytes::from_mebibytes(sram_mib)).unwrap()
    }

    #[test]
    fn area_composition() {
        let c = cfg(16, 8.0);
        // 16*0.6 + 8*0.8 + 0.5 = 16.5 mm^2.
        assert!((c.logic_die_area().to_square_millimeters().value() - 16.5).abs() < 1e-9);
        assert_eq!(c.total_area(), c.logic_die_area());
        assert_eq!(c.memory_die_area(), SquareCentimeters::ZERO);
        assert_eq!(c.total_macs(), 16 * 128);
    }

    #[test]
    fn stacked_area_splits_dies() {
        let c =
            AcceleratorConfig::stacked_3d("3D_2K_8M", 16, Bytes::from_mebibytes(4.0), 2).unwrap();
        assert!((c.sram().to_mebibytes() - 8.0).abs() < 1e-12);
        // Logic die excludes SRAM: 16*0.6 + 0.5 = 10.1 mm^2.
        assert!((c.logic_die_area().to_square_millimeters().value() - 10.1).abs() < 1e-9);
        // Each memory die: 4 MiB * 0.8 = 3.2 mm^2.
        assert!((c.memory_die_area().to_square_millimeters().value() - 3.2).abs() < 1e-9);
        assert!((c.total_area().to_square_millimeters().value() - (10.1 + 6.4)).abs() < 1e-9);
        assert!(c.integration().is_stacked());
    }

    #[test]
    fn stacked_assembly_has_logic_plus_memory_dies() {
        let c = AcceleratorConfig::stacked_3d("s", 8, Bytes::from_mebibytes(2.0), 4).unwrap();
        let asm = c.assembly().unwrap();
        assert_eq!(asm.dice.len(), 5);
        assert_eq!(asm.interfaces(), 4);
        assert!(asm.compound_bond_yield() < 1.0);
    }

    #[test]
    fn on_die_assembly_is_single_die() {
        let asm = cfg(8, 2.0).assembly().unwrap();
        assert_eq!(asm.dice.len(), 1);
        assert_eq!(asm.compound_bond_yield(), 1.0);
    }

    #[test]
    fn embodied_increases_with_sram() {
        let model = EmbodiedModel::default();
        let small = cfg(8, 1.0).embodied_carbon(&model).unwrap();
        let big = cfg(8, 64.0).embodied_carbon(&model).unwrap();
        assert!(big.value() > 2.0 * small.value());
    }

    #[test]
    fn stacking_small_sram_on_top_beats_on_die_area_for_footprint_not_carbon() {
        // 3D pays bond yield + TSV overhead, so total embodied for the same
        // MACs+SRAM is slightly higher than the monolithic 2D die.
        let model = EmbodiedModel::default();
        let flat = cfg(8, 8.0).embodied_carbon(&model).unwrap();
        let stacked = AcceleratorConfig::stacked_3d("s", 8, Bytes::from_mebibytes(2.0), 4)
            .unwrap()
            .embodied_carbon(&model)
            .unwrap();
        assert!(stacked.value() > flat.value());
        // But not wildly higher.
        assert!(stacked.value() < 1.5 * flat.value());
    }

    #[test]
    fn leakage_scales_with_resources() {
        let small = cfg(1, 1.0).leakage_power();
        let big = cfg(64, 64.0).leakage_power();
        assert!(big.value() > small.value());
        let expected = 0.020 + 64.0 * 0.002 + 64.0 * 0.008;
        assert!((big.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn lifetime_operational_carbon_matches_closed_form_for_constant_ci() {
        use cordoba_carbon::intensity::{grids, ConstantCi};
        use cordoba_carbon::operational::operational_carbon;

        let c = cfg(8, 2.0);
        let usage = UsageProfile::from_daily_hours(3.0, 6.0).unwrap();
        let active = Watts::new(8.3);
        let got = c
            .lifetime_operational_carbon(active, &usage, &ConstantCi::new(grids::US_AVERAGE))
            .unwrap();
        // Constant CI: exactly `CI * (E_active + E_idle)`.
        let energy = active * usage.operational_time() + c.leakage_power() * usage.off_time();
        let expected = operational_carbon(grids::US_AVERAGE, energy);
        assert!((got.value() - expected.value()).abs() / expected.value() < 1e-9);
    }

    #[test]
    fn cleaner_grids_cut_lifetime_operational_carbon() {
        use cordoba_carbon::intensity::{grids, ConstantCi};

        let c = cfg(8, 2.0);
        let usage = UsageProfile::from_daily_hours(3.0, 6.0).unwrap();
        let active = Watts::new(8.3);
        let coal = c
            .lifetime_operational_carbon(active, &usage, &ConstantCi::new(grids::COAL))
            .unwrap();
        let wind = c
            .lifetime_operational_carbon(active, &usage, &ConstantCi::new(grids::WIND))
            .unwrap();
        assert!(coal.value() > wind.value());
    }

    #[test]
    fn validation() {
        assert!(AcceleratorConfig::on_die("x", 0, Bytes::from_mebibytes(1.0)).is_err());
        assert!(AcceleratorConfig::on_die("x", 1, Bytes::ZERO).is_err());
        assert!(AcceleratorConfig::stacked_3d("x", 1, Bytes::from_mebibytes(1.0), 0).is_err());
    }

    #[test]
    fn display_format() {
        let c =
            AcceleratorConfig::stacked_3d("3D_1K_2M", 8, Bytes::from_mebibytes(2.0), 1).unwrap();
        assert_eq!(c.to_string(), "3D_1K_2M (8 MAC units, 2 MiB SRAM, 3D)");
        assert_eq!(cfg(4, 1.0).to_string(), "t (4 MAC units, 1 MiB SRAM)");
    }
}
