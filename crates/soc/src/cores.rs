//! Heterogeneous CPU core models for the VR SoC case study (§VI-D).
//!
//! The Snapdragon XR2-class SoC in the paper's Quest 2 study is an
//! octa-core: four efficiency ("silver") cores, three performance ("gold")
//! cores and one "prime" gold core (eq. VI.12). Per-core areas are sized as
//! *core slices* (core + private L2 + its share of the L3/interconnect) so
//! that the 8-core SoC lands on the paper's 2.25 cm² and the 4-core variant
//! on 1.35 cm² (Table V).

use cordoba_carbon::units::{SquareCentimeters, SquareMillimeters, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CPU core class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CoreKind {
    /// Efficiency core (Cortex-A55 class).
    Silver,
    /// Performance core (Cortex-A77 class).
    Gold,
    /// Highest-clocked performance core.
    Prime,
}

impl CoreKind {
    /// Single-thread throughput relative to a silver core.
    #[must_use]
    pub fn performance(self) -> f64 {
        match self {
            Self::Silver => 1.0,
            Self::Gold => 2.5,
            Self::Prime => 3.0,
        }
    }

    /// Core-slice area (core + private caches + fabric share).
    #[must_use]
    pub fn slice_area(self) -> SquareCentimeters {
        let mm2 = match self {
            Self::Silver => 17.5,
            Self::Gold => 27.5,
            Self::Prime => 32.5,
        };
        SquareMillimeters::new(mm2).to_square_centimeters()
    }

    /// Dynamic power at full utilization.
    #[must_use]
    pub fn dynamic_power(self) -> Watts {
        match self {
            Self::Silver => Watts::new(0.45),
            Self::Gold => Watts::new(1.70),
            Self::Prime => Watts::new(2.20),
        }
    }

    /// Leakage power (always on while the SoC is powered).
    #[must_use]
    pub fn leakage_power(self) -> Watts {
        match self {
            Self::Silver => Watts::new(0.015),
            Self::Gold => Watts::new(0.040),
            Self::Prime => Watts::new(0.050),
        }
    }

    /// Energy per unit of work (one silver-core-second of demand) on this
    /// core. Big cores race to idle: they finish the same work faster but
    /// draw proportionally more power, with a small efficiency penalty.
    #[must_use]
    pub fn energy_per_work(self) -> f64 {
        self.dynamic_power().value() / self.performance()
    }
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Silver => "silver",
            Self::Gold => "gold",
            Self::Prime => "prime",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_ordering() {
        assert!(CoreKind::Silver.performance() < CoreKind::Gold.performance());
        assert!(CoreKind::Gold.performance() < CoreKind::Prime.performance());
    }

    #[test]
    fn big_cores_cost_more_area_and_power() {
        assert!(CoreKind::Silver.slice_area() < CoreKind::Gold.slice_area());
        assert!(CoreKind::Gold.slice_area() < CoreKind::Prime.slice_area());
        assert!(CoreKind::Silver.dynamic_power() < CoreKind::Gold.dynamic_power());
        assert!(CoreKind::Gold.leakage_power() < CoreKind::Prime.leakage_power());
    }

    #[test]
    fn efficiency_cores_are_more_energy_efficient_per_work() {
        assert!(CoreKind::Silver.energy_per_work() < CoreKind::Gold.energy_per_work());
        assert!(CoreKind::Gold.energy_per_work() < CoreKind::Prime.energy_per_work());
    }

    #[test]
    fn display_names() {
        assert_eq!(CoreKind::Silver.to_string(), "silver");
        assert_eq!(CoreKind::Prime.to_string(), "prime");
    }
}
