//! Time-stepped scheduler simulation.
//!
//! A finer-grained cross-check of the analytic model in
//! [`crate::scheduler`]: threads are simulated tick by tick with explicit
//! core assignment, demand-limited progress, and per-tick preemption
//! overhead when runnable threads outnumber cores. The analytic model's
//! closed-form stretch should agree with this simulation within a few
//! percent — the test suite enforces it — while the simulation additionally
//! exposes per-core utilization and preemption counts.

use crate::apps::VrApp;
use crate::soc::SocConfig;
use crate::traces::ActivityTrace;
use cordoba_carbon::units::{Joules, Seconds, Watts};
use cordoba_par::supervise::{StopReason, Supervisor};
use serde::{Deserialize, Serialize};

/// Fraction of a tick lost to a preemption (matches the analytic model's
/// context-switch overhead of 0.25 per unit oversubscription).
const PREEMPTION_LOSS: f64 = 0.25;

/// Result of the time-stepped simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSimResult {
    /// Wall-clock duration of the run.
    pub duration: Seconds,
    /// Total energy (CPU dynamic + uncore + leakage).
    pub energy: Joules,
    /// Per-core busy time, fastest core first.
    pub core_busy: Vec<Seconds>,
    /// Oversubscribed thread-segments observed: for each trace segment with
    /// `k` runnable threads on `m < k` cores, `k - m` threads had to share.
    /// Independent of the tick fidelity.
    pub preemptions: u64,
    /// `true` when the tick watchdog cut a segment short because its work
    /// did not drain within the runaway budget; `duration` and `energy` are
    /// then lower bounds for the truncated segment.
    pub truncated: bool,
}

impl EventSimResult {
    /// Utilization of core `i` over the run, or `None` when `i` is out of
    /// range or the run had zero duration.
    #[must_use]
    pub fn core_utilization(&self, i: usize) -> Option<f64> {
        let busy = self.core_busy.get(i)?;
        if self.duration.is_positive() {
            Some(busy.value() / self.duration.value())
        } else {
            None
        }
    }
}

/// An [`EventSimResult`] produced under supervision: the simulated prefix
/// plus why (and whether) the run was stopped early.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedSimResult {
    /// The simulation result. When `stop` is `Some`, `duration`/`energy`
    /// cover only the segments and ticks simulated before the stop and
    /// `truncated` is `true`.
    pub result: EventSimResult,
    /// Why the supervisor stopped the run, or `None` when it ran to
    /// completion.
    pub stop: Option<StopReason>,
}

/// Replays `trace` on `soc` with a time-stepped scheduler.
///
/// `ticks_per_segment` controls fidelity (the tests use 200+).
///
/// # Panics
///
/// Panics if `ticks_per_segment` is zero.
#[must_use]
pub fn simulate_events(
    trace: &ActivityTrace,
    app: &VrApp,
    soc: &SocConfig,
    ticks_per_segment: u32,
) -> EventSimResult {
    simulate_inner(trace, app, soc, ticks_per_segment, None).result
}

/// [`simulate_events`] under a [`Supervisor`]: cancellation and deadline
/// are checked at every simulated tick, so even a single pathological
/// segment cannot hold the simulation past its budget. A stopped run
/// returns the simulated prefix with `truncated = true` and the stop
/// reason; each completed segment counts one unit of supervised progress.
///
/// # Panics
///
/// Panics if `ticks_per_segment` is zero.
#[must_use]
pub fn simulate_events_supervised(
    trace: &ActivityTrace,
    app: &VrApp,
    soc: &SocConfig,
    ticks_per_segment: u32,
    sup: &Supervisor,
) -> SupervisedSimResult {
    simulate_inner(trace, app, soc, ticks_per_segment, Some(sup))
}

fn simulate_inner(
    trace: &ActivityTrace,
    app: &VrApp,
    soc: &SocConfig,
    ticks_per_segment: u32,
    sup: Option<&Supervisor>,
) -> SupervisedSimResult {
    assert!(ticks_per_segment > 0, "ticks_per_segment must be > 0");
    let _span = cordoba_obs::span_with(
        "soc/event_sim",
        "segments",
        u64::try_from(trace.segments().len()).unwrap_or(u64::MAX),
    );
    let cores = soc.cores();
    let m = cores.len();
    let leakage = soc.leakage_power();
    let uncore = crate::scheduler::UNCORE_ACTIVE_POWER;

    let mut duration = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    let mut core_busy = vec![Seconds::ZERO; m];
    let mut preemptions = 0u64;
    let mut truncated = false;
    let mut stop = None;

    'segments: for segment in trace.segments() {
        if let Some(s) = sup {
            if let Some(reason) = s.should_stop() {
                stop = Some(s.record_stop(reason));
                truncated = true;
                break 'segments;
            }
        }
        let demands = app.thread_demands(segment.threads);
        let k = demands.len();
        if k == 0 {
            duration += segment.duration;
            energy += leakage * segment.duration;
            if let Some(s) = sup {
                s.note_completed(1);
            }
            continue;
        }
        // Work each thread must complete in this segment
        // (silver-core-seconds).
        let mut remaining: Vec<f64> = demands
            .iter()
            .map(|u| u * segment.duration.value())
            .collect();
        let dt = segment.duration.value() / f64::from(ticks_per_segment);
        let oversubscribed = k > m;
        if oversubscribed {
            preemptions += (k - m) as u64;
        }
        // Effective per-tick efficiency under oversubscription.
        let efficiency = if oversubscribed {
            1.0 / (1.0 + PREEMPTION_LOSS * (k - m) as f64 / m as f64)
        } else {
            1.0
        };

        let mut t = 0.0;
        // Tick watchdog: demand-limited progress always terminates for the
        // built-in app models; a pathological custom app (vanishing demand
        // with nonzero work) is truncated here rather than hanging, and the
        // result carries a `truncated` marker instead of asserting.
        let max_time = segment.duration.value() * 50.0;
        while remaining.iter().any(|&w| w > 1e-12) && t < max_time {
            // Tick-level supervision: a deadline or cancellation lands
            // mid-segment, not only at segment boundaries, so one runaway
            // segment cannot blow through the budget.
            if let Some(s) = sup {
                if let Some(reason) = s.should_stop() {
                    stop = Some(s.record_stop(reason));
                    truncated = true;
                    duration += Seconds::new(t);
                    break 'segments;
                }
            }
            // Greedy assignment: most-loaded runnable threads onto the
            // fastest cores, round-robin when oversubscribed.
            let mut order: Vec<usize> = (0..k).filter(|&i| remaining[i] > 1e-12).collect();
            order.sort_by(|&a, &b| remaining[b].total_cmp(&remaining[a]));
            let mut queues: Vec<Vec<usize>> = vec![Vec::new(); m];
            for (slot, &thread) in order.iter().enumerate() {
                queues[slot % m].push(thread);
            }
            let mut cpu_power = Watts::ZERO;
            for (core, queue) in queues.iter().enumerate() {
                if queue.is_empty() {
                    continue;
                }
                let perf = cores[core].performance();
                // The core serves its queue's aggregate demand, capped by
                // its own throughput, degraded by preemption overhead.
                let want: f64 = queue.iter().map(|&i| demands[i]).sum();
                let deliver_rate = want.min(perf) * efficiency;
                let mut delivered = 0.0;
                for &thread in queue {
                    let share = demands[thread] / want;
                    let done = (deliver_rate * dt * share).min(remaining[thread]);
                    remaining[thread] -= done;
                    delivered += done;
                }
                let busy = (delivered / (perf * efficiency)).min(dt);
                core_busy[core] += Seconds::new(busy);
                cpu_power += cores[core].dynamic_power() * (busy / dt).min(1.0);
            }
            energy += (cpu_power + uncore + leakage) * Seconds::new(dt);
            t += dt;
        }
        if remaining.iter().any(|&w| w > 1e-9) {
            truncated = true;
            cordoba_obs::record(&cordoba_obs::Event::WatchdogTruncation);
        }
        duration += Seconds::new(t);
        if let Some(s) = sup {
            s.note_completed(1);
        }
    }

    SupervisedSimResult {
        result: EventSimResult {
            duration,
            energy,
            core_busy,
            preemptions,
            truncated,
        },
        stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::schedule;

    #[test]
    fn agrees_with_analytic_model_on_duration() {
        for app in VrApp::studied_tasks() {
            let trace = ActivityTrace::deterministic(&app);
            for cores in [4u32, 6, 8] {
                let soc = SocConfig::provisioned(cores).unwrap();
                let analytic = schedule(&trace, &app, &soc);
                let event = simulate_events(&trace, &app, &soc, 400);
                let rel = (event.duration.value() - analytic.duration.value()).abs()
                    / analytic.duration.value();
                assert!(
                    rel < 0.12,
                    "{} on {cores} cores: event {} vs analytic {} ({rel:.3})",
                    app.name,
                    event.duration,
                    analytic.duration
                );
            }
        }
    }

    #[test]
    fn agrees_with_analytic_model_on_energy() {
        let app = VrApp::m1();
        let trace = ActivityTrace::deterministic(&app);
        let soc = SocConfig::quest2();
        let analytic = schedule(&trace, &app, &soc);
        let event = simulate_events(&trace, &app, &soc, 400);
        let rel = (event.energy.value() - analytic.energy.value()).abs() / analytic.energy.value();
        assert!(rel < 0.15, "energy mismatch {rel:.3}");
    }

    #[test]
    fn oversubscription_produces_preemptions() {
        let app = VrApp::b1();
        let trace = ActivityTrace::deterministic(&app);
        let four = simulate_events(&trace, &app, &SocConfig::provisioned(4).unwrap(), 200);
        let eight = simulate_events(&trace, &app, &SocConfig::quest2(), 200);
        assert!(four.preemptions > eight.preemptions);
        assert!(four.duration > eight.duration);
    }

    #[test]
    fn fastest_core_is_busiest_for_main_heavy_apps() {
        let app = VrApp::m1(); // main thread demand 2.0, background 0.55
        let trace = ActivityTrace::deterministic(&app);
        let soc = SocConfig::quest2();
        let r = simulate_events(&trace, &app, &soc, 300);
        // The prime core (index 0) carries the main thread.
        let prime = r.core_utilization(0).unwrap();
        let last_silver = r.core_utilization(soc.cores().len() - 1).unwrap();
        assert!(
            prime > last_silver,
            "prime {prime:.3} vs silver {last_silver:.3}"
        );
        assert!(prime <= 1.0 + 1e-9);
        // Checked accessor: out-of-range index is None, not a panic.
        assert_eq!(r.core_utilization(soc.cores().len()), None);
        assert!(!r.truncated);
    }

    #[test]
    fn zero_duration_utilization_is_none() {
        let r = EventSimResult {
            duration: Seconds::ZERO,
            energy: Joules::ZERO,
            core_busy: vec![Seconds::ZERO; 2],
            preemptions: 0,
            truncated: false,
        };
        assert_eq!(r.core_utilization(0), None);
        assert_eq!(r.core_utilization(5), None);
    }

    #[test]
    fn pathological_demand_is_truncated_not_hung() {
        // Demands far beyond the cluster's throughput cannot drain within
        // the 50x watchdog budget; the simulation must stop, flag the
        // truncation, and still report finite totals.
        let app = VrApp {
            name: "runaway".to_string(),
            main_demand: 1e6,
            background_demand: 1e6,
            ..VrApp::m1()
        };
        let trace = ActivityTrace::new(vec![crate::traces::Segment {
            duration: Seconds::new(1.0),
            threads: 8,
        }])
        .unwrap();
        let soc = SocConfig::quest2();
        let r = simulate_events(&trace, &app, &soc, 50);
        assert!(r.truncated);
        assert!(r.duration.is_finite() && r.energy.is_finite());
        // Bounded by the watchdog: at most 50x the segment duration.
        assert!(r.duration.value() <= 50.0 + 1e-6);
    }

    #[test]
    fn supervised_sim_matches_unsupervised_when_unbounded() {
        let app = VrApp::m1();
        let trace = ActivityTrace::deterministic(&app);
        let soc = SocConfig::quest2();
        let direct = simulate_events(&trace, &app, &soc, 200);
        let sup = Supervisor::unbounded();
        let supervised = simulate_events_supervised(&trace, &app, &soc, 200, &sup);
        assert_eq!(supervised.stop, None);
        assert_eq!(supervised.result, direct);
        assert_eq!(
            sup.progress().completed,
            trace.segments().len() as u64,
            "one progress unit per segment"
        );
    }

    #[test]
    fn cancelled_sim_returns_truncated_prefix() {
        let app = VrApp::m1();
        let trace = ActivityTrace::deterministic(&app);
        let soc = SocConfig::quest2();
        let full = simulate_events(&trace, &app, &soc, 200);
        // Cancelled before the first segment: empty truncated prefix.
        let sup = Supervisor::unbounded();
        sup.cancel();
        let r = simulate_events_supervised(&trace, &app, &soc, 200, &sup);
        assert_eq!(r.stop, Some(StopReason::Cancelled));
        assert!(r.result.truncated);
        assert_eq!(r.result.duration, Seconds::ZERO);
        // Tripped after one segment: a strict prefix of the full run.
        let trip = Supervisor::tripping_after(1);
        let r = simulate_events_supervised(&trace, &app, &soc, 200, &trip);
        assert_eq!(r.stop, Some(StopReason::Cancelled));
        assert!(r.result.truncated);
        assert!(r.result.duration < full.duration);
        assert!(r.result.duration.value() > 0.0);
    }

    #[test]
    fn idle_trace_costs_only_leakage() {
        let app = VrApp::m1();
        let trace = ActivityTrace::new(vec![crate::traces::Segment {
            duration: Seconds::new(5.0),
            threads: 0,
        }])
        .unwrap();
        let soc = SocConfig::quest2();
        let r = simulate_events(&trace, &app, &soc, 100);
        assert!((r.duration.value() - 5.0).abs() < 1e-9);
        let expected = soc.leakage_power().value() * 5.0;
        assert!((r.energy.value() - expected).abs() < 1e-9);
        assert_eq!(r.preemptions, 0);
        assert!(r.core_busy.iter().all(|b| b.value() == 0.0));
    }

    #[test]
    fn fidelity_improves_with_tick_count() {
        let app = VrApp::sg1();
        let trace = ActivityTrace::deterministic(&app);
        let soc = SocConfig::provisioned(5).unwrap();
        let analytic = schedule(&trace, &app, &soc).duration.value();
        let coarse = simulate_events(&trace, &app, &soc, 20).duration.value();
        let fine = simulate_events(&trace, &app, &soc, 800).duration.value();
        let err = |v: f64| (v - analytic).abs() / analytic;
        assert!(err(fine) <= err(coarse) + 0.01);
    }

    #[test]
    fn work_conservation_across_schedulers() {
        // The event simulator must complete the same total work the
        // analytic model accounts for.
        let app = VrApp::g2();
        let trace = ActivityTrace::deterministic(&app);
        let soc = SocConfig::provisioned(6).unwrap();
        let analytic = schedule(&trace, &app, &soc);
        let event = simulate_events(&trace, &app, &soc, 300);
        // Busy time x perf x efficiency >= work (efficiency losses make
        // busy time an upper bound).
        let delivered: f64 = event
            .core_busy
            .iter()
            .zip(soc.cores())
            .map(|(busy, core)| busy.value() * core.performance())
            .sum();
        assert!(
            delivered >= analytic.work * 0.95,
            "delivered {delivered} vs work {}",
            analytic.work
        );
    }
}
