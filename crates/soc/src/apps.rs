//! Production VR application models (§VI-D).
//!
//! The paper groups the top Quest 2 tasks into four categories — general
//! gaming (G), social gaming (SG), browser/virtual desktop (B), and media
//! (M) — and reports thread-level parallelism between 3.52 and 4.15 for the
//! four studied tasks (G-2, M-1, B-1, SG-1). Since the production Perfetto
//! traces are not public, each app carries a *concurrency distribution*
//! (fraction of active time with `k` threads runnable) and per-thread
//! compute demands, calibrated to the published TLP figures; the trace
//! generator in [`crate::traces`] synthesizes activity timelines from them.

use cordoba_carbon::units::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Application category (the paper's G / SG / B / M grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppCategory {
    /// General gaming.
    GeneralGaming,
    /// Social gaming.
    SocialGaming,
    /// Browser and virtual desktop.
    Browser,
    /// Media playback.
    Media,
}

impl fmt::Display for AppCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::GeneralGaming => "G",
            Self::SocialGaming => "SG",
            Self::Browser => "B",
            Self::Media => "M",
        };
        f.write_str(s)
    }
}

/// A VR application workload model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VrApp {
    /// Task label (e.g. `"M-1"`).
    pub name: String,
    /// The app's category.
    pub category: AppCategory,
    /// `concurrency[k]` is the fraction of time exactly `k` threads are
    /// runnable, `k = 0..=8`. Sums to 1.
    pub concurrency: [f64; 9],
    /// Compute demand of the main (render/decode) thread, in silver-core
    /// units of sustained throughput.
    pub main_demand: f64,
    /// Compute demand of each background thread, in silver-core units.
    pub background_demand: f64,
    /// Nominal session length used as the task duration `D`.
    pub session: Seconds,
    /// Daily active hours of this app class on a deployed headset, used to
    /// amortize embodied carbon.
    pub daily_hours: f64,
}

impl VrApp {
    /// Thread-level parallelism: mean runnable threads over non-idle time
    /// (`TLP = Σ_k k·c_k / (1 - c_0)` \[6\], \[15\], \[17\]).
    #[must_use]
    pub fn tlp(&self) -> f64 {
        let active: f64 = self.concurrency[1..].iter().sum();
        let weighted: f64 = self
            .concurrency
            .iter()
            .enumerate()
            .map(|(k, c)| k as f64 * c)
            .sum();
        weighted / active
    }

    /// Fraction of time the CPU cluster is fully idle.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        self.concurrency[0]
    }

    /// The M-1 media task (video playback): moderate TLP, light background
    /// threads — the paper's best case for 4-core provisioning.
    #[must_use]
    pub fn m1() -> Self {
        Self {
            name: "M-1".into(),
            category: AppCategory::Media,
            concurrency: [0.05, 0.095, 0.124, 0.237, 0.314, 0.104, 0.048, 0.019, 0.009],
            main_demand: 2.0,
            background_demand: 0.55,
            session: Seconds::new(40.0),
            daily_hours: 1.2,
        }
    }

    /// The G-2 general-gaming task.
    #[must_use]
    pub fn g2() -> Self {
        Self {
            name: "G-2".into(),
            category: AppCategory::GeneralGaming,
            concurrency: [0.04, 0.077, 0.115, 0.211, 0.288, 0.144, 0.077, 0.029, 0.019],
            main_demand: 2.6,
            background_demand: 0.70,
            session: Seconds::new(40.0),
            daily_hours: 1.6,
        }
    }

    /// The B-1 browser / virtual-desktop task: the highest TLP (4.15) and
    /// heavier background threads — degraded by 4-core provisioning.
    #[must_use]
    pub fn b1() -> Self {
        Self {
            name: "B-1".into(),
            category: AppCategory::Browser,
            concurrency: [0.03, 0.058, 0.097, 0.165, 0.243, 0.213, 0.116, 0.049, 0.029],
            main_demand: 2.4,
            background_demand: 1.20,
            session: Seconds::new(40.0),
            daily_hours: 2.5,
        }
    }

    /// The SG-1 social-gaming task.
    #[must_use]
    pub fn sg1() -> Self {
        Self {
            name: "SG-1".into(),
            category: AppCategory::SocialGaming,
            concurrency: [
                0.035, 0.058, 0.106, 0.174, 0.270, 0.183, 0.097, 0.048, 0.029,
            ],
            main_demand: 2.7,
            background_demand: 1.10,
            session: Seconds::new(40.0),
            daily_hours: 2.6,
        }
    }

    /// The four studied top-10 tasks.
    #[must_use]
    pub fn studied_tasks() -> Vec<Self> {
        vec![Self::g2(), Self::m1(), Self::b1(), Self::sg1()]
    }

    /// An "All tasks" aggregate: the usage-weighted mixture of the four
    /// studied tasks (the top 10 tasks cover >85 % of compute time; these
    /// four represent their categories).
    #[must_use]
    pub fn all_tasks() -> Self {
        let apps = Self::studied_tasks();
        let total_hours: f64 = apps.iter().map(|a| a.daily_hours).sum();
        let mut concurrency = [0.0; 9];
        let mut main_demand = 0.0;
        let mut background_demand = 0.0;
        for app in &apps {
            let w = app.daily_hours / total_hours;
            for (slot, c) in concurrency.iter_mut().zip(app.concurrency.iter()) {
                *slot += w * c;
            }
            main_demand += w * app.main_demand;
            background_demand += w * app.background_demand;
        }
        Self {
            name: "All Tasks".into(),
            category: AppCategory::GeneralGaming,
            concurrency,
            main_demand,
            background_demand,
            session: Seconds::new(40.0),
            daily_hours: total_hours,
        }
    }

    /// Per-thread demands of a segment with `k` runnable threads: the main
    /// thread first, then `k - 1` background threads.
    #[must_use]
    pub fn thread_demands(&self, k: u32) -> Vec<f64> {
        let mut demands = Vec::with_capacity(k as usize);
        if k >= 1 {
            demands.push(self.main_demand);
            demands.extend(std::iter::repeat_n(self.background_demand, k as usize - 1));
        }
        demands
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_distributions_sum_to_one() {
        for app in VrApp::studied_tasks() {
            let sum: f64 = app.concurrency.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "{} sums to {sum}", app.name);
        }
        let all: f64 = VrApp::all_tasks().concurrency.iter().sum();
        assert!((all - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tlp_matches_paper_range() {
        // §VI-D: "TLP ranges from 3.52 to 4.15".
        for app in VrApp::studied_tasks() {
            let tlp = app.tlp();
            assert!(
                (3.4..=4.3).contains(&tlp),
                "{} TLP {tlp} out of paper range",
                app.name
            );
        }
        // Endpoints: M-1 is the low end, B-1 the high end.
        let m1 = VrApp::m1().tlp();
        let b1 = VrApp::b1().tlp();
        assert!((m1 - 3.52).abs() < 0.15, "M-1 TLP {m1}");
        assert!((b1 - 4.15).abs() < 0.15, "B-1 TLP {b1}");
        for app in VrApp::studied_tasks() {
            assert!(app.tlp() >= m1 - 1e-9 && app.tlp() <= b1 + 1e-9);
        }
    }

    #[test]
    fn over_provisioning_signal() {
        // TLP ~3.5-4.2 on an 8-core CPU: "over three unused cores on
        // average".
        for app in VrApp::studied_tasks() {
            assert!(8.0 - app.tlp() > 3.0, "{}", app.name);
        }
    }

    #[test]
    fn thread_demands_shape() {
        let app = VrApp::m1();
        assert!(app.thread_demands(0).is_empty());
        let d = app.thread_demands(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d[0], 2.0);
        assert!(d[1..].iter().all(|&x| (x - 0.55).abs() < 1e-12));
    }

    #[test]
    fn all_tasks_is_a_convex_mixture() {
        let all = VrApp::all_tasks();
        let apps = VrApp::studied_tasks();
        let min_tlp = apps.iter().map(|a| a.tlp()).fold(f64::INFINITY, f64::min);
        let max_tlp = apps.iter().map(|a| a.tlp()).fold(0.0, f64::max);
        assert!(all.tlp() >= min_tlp && all.tlp() <= max_tlp);
        let expected_hours: f64 = apps.iter().map(|a| a.daily_hours).sum();
        assert!((all.daily_hours - expected_hours).abs() < 1e-9);
        assert!((6.0..10.0).contains(&all.daily_hours));
    }

    #[test]
    fn category_display() {
        assert_eq!(AppCategory::Media.to_string(), "M");
        assert_eq!(AppCategory::Browser.to_string(), "B");
        assert_eq!(AppCategory::GeneralGaming.to_string(), "G");
        assert_eq!(AppCategory::SocialGaming.to_string(), "SG");
    }
}
