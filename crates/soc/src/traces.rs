//! Synthetic thread-activity traces.
//!
//! Stands in for the paper's adb/Simpleperf/Perfetto profiling of production
//! Quest 2 devices (§V): a trace is a timeline of how many threads are
//! runnable. Traces can be synthesized deterministically (segment durations
//! exactly proportional to the app's concurrency distribution — used by the
//! benches for reproducibility) or stochastically (Markov-style sampling —
//! used to stress-test the scheduler).

use crate::apps::VrApp;
use cordoba_carbon::units::Seconds;
use cordoba_carbon::CarbonError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A contiguous span of time with a fixed number of runnable threads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Span duration.
    pub duration: Seconds,
    /// Number of runnable threads (0 = idle).
    pub threads: u32,
}

/// A thread-activity timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityTrace {
    segments: Vec<Segment>,
}

impl ActivityTrace {
    /// Builds a trace from raw segments.
    ///
    /// # Errors
    ///
    /// Returns an error if `segments` is empty or any duration is not
    /// positive.
    pub fn new(segments: Vec<Segment>) -> Result<Self, CarbonError> {
        if segments.is_empty() {
            return Err(CarbonError::Empty {
                what: "activity trace",
            });
        }
        for s in &segments {
            CarbonError::require_positive("segment duration", s.duration.value())?;
        }
        Ok(Self { segments })
    }

    /// Deterministic synthesis: one segment per concurrency level, with
    /// duration exactly `c_k * session`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cordoba_soc::apps::VrApp;
    /// use cordoba_soc::traces::ActivityTrace;
    ///
    /// let trace = ActivityTrace::deterministic(&VrApp::m1());
    /// assert!((trace.total_duration().value() - 40.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn deterministic(app: &VrApp) -> Self {
        let segments = app
            .concurrency
            .iter()
            .enumerate()
            .filter(|&(_, c)| *c > 0.0)
            .map(|(k, &c)| Segment {
                duration: app.session * c,
                threads: k as u32,
            })
            .collect();
        Self { segments }
    }

    /// Stochastic synthesis: `steps` fixed-width slices whose thread counts
    /// are sampled i.i.d. from the app's concurrency distribution.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    #[must_use]
    pub fn sampled<R: Rng + ?Sized>(rng: &mut R, app: &VrApp, steps: usize) -> Self {
        assert!(steps > 0, "steps must be > 0");
        let dt = app.session / steps as f64;
        let segments = (0..steps)
            .map(|_| {
                let mut x: f64 = rng.gen();
                let mut threads = 0u32;
                for (k, &c) in app.concurrency.iter().enumerate() {
                    if x < c {
                        threads = k as u32;
                        break;
                    }
                    x -= c;
                    threads = k as u32;
                }
                Segment {
                    duration: dt,
                    threads,
                }
            })
            .collect();
        Self { segments }
    }

    /// The segments of the trace.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total trace duration.
    #[must_use]
    pub fn total_duration(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Non-idle duration.
    #[must_use]
    pub fn active_duration(&self) -> Seconds {
        self.segments
            .iter()
            .filter(|s| s.threads > 0)
            .map(|s| s.duration)
            .sum()
    }

    /// Thread-level parallelism of the trace:
    /// `Σ k·t_k / Σ_{k≥1} t_k` (cores activated concurrently over non-idle
    /// time \[6\]).
    #[must_use]
    pub fn tlp(&self) -> f64 {
        let active = self.active_duration().value();
        // cordoba-lint: allow(float-eq) — exact-zero sentinel guarding division
        if active == 0.0 {
            return 0.0;
        }
        let weighted: f64 = self
            .segments
            .iter()
            .map(|s| f64::from(s.threads) * s.duration.value())
            .sum();
        weighted / active
    }

    /// Peak concurrency in the trace.
    #[must_use]
    pub fn peak_threads(&self) -> u32 {
        self.segments.iter().map(|s| s.threads).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_trace_reproduces_app_tlp() {
        for app in VrApp::studied_tasks() {
            let trace = ActivityTrace::deterministic(&app);
            assert!(
                (trace.tlp() - app.tlp()).abs() < 1e-9,
                "{} trace TLP {} vs app {}",
                app.name,
                trace.tlp(),
                app.tlp()
            );
            assert!((trace.total_duration().value() - app.session.value()).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_trace_converges_to_app_tlp() {
        let app = VrApp::b1();
        let mut rng = StdRng::seed_from_u64(11);
        let trace = ActivityTrace::sampled(&mut rng, &app, 200_000);
        assert!(
            (trace.tlp() - app.tlp()).abs() < 0.05,
            "sampled TLP {} vs {}",
            trace.tlp(),
            app.tlp()
        );
    }

    #[test]
    fn active_duration_excludes_idle() {
        let app = VrApp::m1();
        let trace = ActivityTrace::deterministic(&app);
        let expected_active = app.session.value() * (1.0 - app.idle_fraction());
        assert!((trace.active_duration().value() - expected_active).abs() < 1e-9);
    }

    #[test]
    fn peak_threads() {
        let trace = ActivityTrace::deterministic(&VrApp::m1());
        assert_eq!(trace.peak_threads(), 8);
    }

    #[test]
    fn validation() {
        assert!(ActivityTrace::new(vec![]).is_err());
        assert!(ActivityTrace::new(vec![Segment {
            duration: Seconds::ZERO,
            threads: 1
        }])
        .is_err());
        let ok = ActivityTrace::new(vec![Segment {
            duration: Seconds::new(1.0),
            threads: 2,
        }])
        .unwrap();
        assert_eq!(ok.segments().len(), 1);
        assert_eq!(ok.tlp(), 2.0);
    }

    #[test]
    fn all_idle_trace_has_zero_tlp() {
        let t = ActivityTrace::new(vec![Segment {
            duration: Seconds::new(1.0),
            threads: 0,
        }])
        .unwrap();
        assert_eq!(t.tlp(), 0.0);
        assert_eq!(t.active_duration(), Seconds::ZERO);
    }
}
