//! Heterogeneous-core trace scheduler.
//!
//! Replays a thread-activity trace on a provisioned SoC and reports the
//! stretched execution time, energy, and average power. The model:
//!
//! * each segment has `k` runnable threads with demands from the app model
//!   (a heavy main thread + lighter background threads), in silver-core
//!   throughput units;
//! * with `k <= cores`, the i-th most demanding thread runs on the i-th
//!   fastest core; the segment stretches by `max_i(demand_i / perf_i)` when
//!   any thread outstrips its core;
//! * with `k > cores`, threads time-multiplex: the segment stretches by
//!   `max(1, main/perf_1, Σdemand / Σperf)` plus a context-switch overhead
//!   proportional to the oversubscription;
//! * CPU dynamic energy is work-proportional (race-to-idle); the uncore
//!   (GPU/display/DSP) draws constant power while active, which dominates —
//!   matching the paper's observation (Table V) that task energy is nearly
//!   unchanged by provisioning while delay moves slightly.

use crate::apps::VrApp;
use crate::soc::SocConfig;
use crate::traces::ActivityTrace;
use cordoba_carbon::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Context-switch stretch per unit of oversubscription (`(k - m) / m`).
pub const CONTEXT_SWITCH_OVERHEAD: f64 = 0.25;
/// Constant uncore power (GPU, display pipeline, DSP) while active.
pub const UNCORE_ACTIVE_POWER: Watts = Watts::new(5.5);

/// Result of replaying a trace on a SoC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Wall-clock duration of the (possibly stretched) trace.
    pub duration: Seconds,
    /// Total energy consumed (CPU dynamic + uncore + leakage).
    pub energy: Joules,
    /// CPU work completed, in silver-core-seconds (config-invariant).
    pub work: f64,
}

impl ScheduleResult {
    /// Average power over the run.
    #[must_use]
    pub fn average_power(&self) -> Watts {
        self.energy / self.duration
    }
}

/// Stretch factor of one segment with the given thread demands on `soc`.
///
/// Threads migrate freely (work-stealing scheduler), so the segment is
/// bound by the serial main thread on the fastest core and by aggregate
/// throughput; oversubscription (`k > cores`) adds context-switch overhead.
fn segment_stretch(demands: &[f64], soc: &SocConfig) -> f64 {
    let cores = soc.cores();
    let k = demands.len();
    let m = cores.len();
    if k == 0 {
        return 1.0;
    }
    let total: f64 = demands.iter().sum();
    let main_bound = demands[0] / cores[0].performance();
    let throughput_bound = total / soc.capacity();
    let base = main_bound.max(throughput_bound).max(1.0);
    let overhead = if k > m {
        CONTEXT_SWITCH_OVERHEAD * (k - m) as f64 / m as f64
    } else {
        0.0
    };
    base + overhead
}

/// CPU dynamic power during one segment (work-proportional: the same
/// demand spread over a stretched segment draws proportionally less power).
fn segment_cpu_power(demands: &[f64], soc: &SocConfig, stretch: f64) -> Watts {
    if demands.is_empty() {
        return Watts::ZERO;
    }
    let total: f64 = demands.iter().sum();
    let util = (total / soc.capacity() / stretch).min(1.0);
    soc.cores()
        .iter()
        .map(|c| c.dynamic_power() * util)
        .sum::<Watts>()
}

/// Replays `trace` (with `app`'s per-thread demands) on `soc`.
///
/// # Examples
///
/// ```
/// use cordoba_soc::apps::VrApp;
/// use cordoba_soc::scheduler::schedule;
/// use cordoba_soc::soc::SocConfig;
/// use cordoba_soc::traces::ActivityTrace;
///
/// let app = VrApp::m1();
/// let trace = ActivityTrace::deterministic(&app);
/// let full = schedule(&trace, &app, &SocConfig::quest2());
/// let lean = schedule(&trace, &app, &SocConfig::provisioned(4)?);
/// // Media barely slows down on 4 cores (TLP ~3.5).
/// assert!(lean.duration.value() / full.duration.value() < 1.05);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[must_use]
pub fn schedule(trace: &ActivityTrace, app: &VrApp, soc: &SocConfig) -> ScheduleResult {
    let _span = cordoba_obs::span_with(
        "soc/schedule",
        "segments",
        u64::try_from(trace.segments().len()).unwrap_or(u64::MAX),
    );
    let leakage = soc.leakage_power();
    let mut duration = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    let mut work = 0.0;
    for segment in trace.segments() {
        let demands = app.thread_demands(segment.threads);
        let stretch = segment_stretch(&demands, soc);
        let seg_time = segment.duration * stretch;
        let cpu = segment_cpu_power(&demands, soc, stretch);
        let uncore = if segment.threads > 0 {
            UNCORE_ACTIVE_POWER
        } else {
            Watts::ZERO
        };
        duration += seg_time;
        energy += (cpu + uncore + leakage) * seg_time;
        work += demands.iter().sum::<f64>() * segment.duration.value();
    }
    ScheduleResult {
        duration,
        energy,
        work,
    }
}

/// Convenience: deterministic trace + schedule in one call.
#[must_use]
pub fn schedule_app(app: &VrApp, soc: &SocConfig) -> ScheduleResult {
    schedule(&ActivityTrace::deterministic(app), app, soc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_soc_runs_all_apps_without_stretch_dominated_delay() {
        let soc = SocConfig::quest2();
        for app in VrApp::studied_tasks() {
            let r = schedule_app(&app, &soc);
            let nominal = app.session.value();
            assert!(
                r.duration.value() < nominal * 1.02,
                "{} stretched to {} on 8 cores",
                app.name,
                r.duration
            );
        }
    }

    #[test]
    fn media_barely_slows_on_four_cores() {
        // The paper's M-1 result: ~0.98 normalized FPS at 4 cores.
        let app = VrApp::m1();
        let full = schedule_app(&app, &SocConfig::quest2());
        let lean = schedule_app(&app, &SocConfig::provisioned(4).unwrap());
        let slowdown = lean.duration.value() / full.duration.value();
        assert!(
            (1.0..1.05).contains(&slowdown),
            "M-1 4-core slowdown {slowdown}"
        );
    }

    #[test]
    fn browser_slows_more_than_media_on_four_cores() {
        // B-1 (TLP 4.15, heavy threads) degrades noticeably more than M-1.
        let four = SocConfig::provisioned(4).unwrap();
        let eight = SocConfig::quest2();
        let slow = |app: &VrApp| {
            schedule_app(app, &four).duration.value() / schedule_app(app, &eight).duration.value()
        };
        let m1 = slow(&VrApp::m1());
        let b1 = slow(&VrApp::b1());
        assert!(b1 > m1 + 0.02, "B-1 {b1} vs M-1 {m1}");
    }

    #[test]
    fn work_is_config_invariant() {
        let app = VrApp::sg1();
        let a = schedule_app(&app, &SocConfig::quest2());
        let b = schedule_app(&app, &SocConfig::provisioned(4).unwrap());
        assert!((a.work - b.work).abs() < 1e-9);
        assert!(a.work > 0.0);
    }

    #[test]
    fn energy_is_roughly_provisioning_invariant() {
        // Table V: E = 332 J both before and after optimization. Our model
        // should keep task energy within a few percent across provisioning.
        let app = VrApp::m1();
        let a = schedule_app(&app, &SocConfig::quest2());
        let b = schedule_app(&app, &SocConfig::provisioned(4).unwrap());
        let ratio = b.energy.value() / a.energy.value();
        assert!((0.93..1.07).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn power_magnitude_matches_table_v() {
        // Table V: P_total 8.3 W over the 40 s M-1 task (E = 332 J).
        let r = schedule_app(&VrApp::m1(), &SocConfig::quest2());
        let p = r.average_power().value();
        assert!((6.0..10.5).contains(&p), "average power {p} W");
    }

    #[test]
    fn stretch_edges() {
        let soc = SocConfig::provisioned(4).unwrap();
        assert_eq!(segment_stretch(&[], &soc), 1.0);
        // One light thread never stretches.
        assert_eq!(segment_stretch(&[0.5], &soc), 1.0);
        // A thread demanding more than the prime core stretches.
        assert!(segment_stretch(&[4.0], &soc) > 1.3);
        // Oversubscription adds context-switch overhead even when demand
        // fits capacity.
        let light = vec![0.2; 8];
        assert!(segment_stretch(&light, &soc) > 1.0);
    }

    #[test]
    fn idle_segments_cost_only_leakage() {
        let app = VrApp::m1();
        let soc = SocConfig::quest2();
        let trace = ActivityTrace::new(vec![crate::traces::Segment {
            duration: Seconds::new(10.0),
            threads: 0,
        }])
        .unwrap();
        let r = schedule(&trace, &app, &soc);
        let expected = soc.leakage_power().value() * 10.0;
        assert!((r.energy.value() - expected).abs() < 1e-9);
        assert_eq!(r.work, 0.0);
    }
}
