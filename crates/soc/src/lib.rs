//! # cordoba-soc
//!
//! Production-VR-SoC substrate for the CORDOBA framework: everything the
//! paper's §VI-D hardware-provisioning case study needs, rebuilt from
//! scratch with synthetic traces in place of the proprietary Quest 2
//! profiles (see `DESIGN.md` for the substitution rationale).
//!
//! * [`cores`] — silver/gold/prime CPU core models (perf, area, power);
//! * [`soc`] — provisioned SoC configurations (eq. VI.12's 0/1 selection),
//!   sized so 8-core = 2.25 cm² and 4-core = 1.35 cm² (Table V);
//! * [`apps`] — VR app models (G-2, M-1, B-1, SG-1 and the All-Tasks mix)
//!   with concurrency distributions hitting the published TLP of 3.52-4.15;
//! * [`traces`] — deterministic/stochastic thread-activity synthesis;
//! * [`scheduler`] — heterogeneous-core trace replay (delay + energy);
//! * [`provisioning`] — the 4..8-core tCDP sweep (Fig. 10, Table V).
//!
//! # Example
//!
//! ```
//! use cordoba_soc::prelude::*;
//!
//! let rows = sweep(&VrApp::m1(), &Deployment::default())?;
//! assert_eq!(optimal_cores(&rows), 4); // the paper's M-1 result
//! # Ok::<(), cordoba_carbon::CarbonError>(())
//! ```

pub mod apps;
pub mod cores;
pub mod event_sim;
pub mod provisioning;
pub mod scheduler;
pub mod soc;
pub mod traces;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::apps::{AppCategory, VrApp};
    pub use crate::cores::CoreKind;
    pub use crate::event_sim::{
        simulate_events, simulate_events_supervised, EventSimResult, SupervisedSimResult,
    };
    pub use crate::provisioning::{
        improvement_over_8core, optimal_cores, sweep, sweep_supervised,
        sweep_supervised_with_threads, Deployment, ProvisioningRow, SupervisedProvisioning,
    };
    pub use crate::scheduler::{schedule, schedule_app, ScheduleResult};
    pub use crate::soc::SocConfig;
    pub use crate::traces::{ActivityTrace, Segment};
}
