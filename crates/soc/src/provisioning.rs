//! The hardware-provisioning sweep (§VI-D, Fig. 10, Table V).
//!
//! For each core count 4..=8, replays an app's activity trace, derives task
//! delay and energy, charges amortized embodied carbon and operational
//! carbon over the headset's deployed life, and reports tCDP.

use crate::apps::VrApp;
use crate::scheduler::{schedule_app, ScheduleResult};
use crate::soc::SocConfig;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_carbon::lifetime::UsageProfile;
use cordoba_carbon::operational::operational_carbon;
use cordoba_carbon::units::{CarbonIntensity, GramSecondsCo2e, GramsCo2e, Joules, Seconds};
use cordoba_carbon::CarbonError;
use cordoba_par::supervise::{Outcome, StopReason, Supervisor};
use serde::{Deserialize, Serialize};

/// Deployment assumptions for the provisioning study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Headset lifetime in years.
    pub lifetime_years: f64,
    /// Use-phase carbon intensity.
    pub ci_use: CarbonIntensity,
    /// Embodied-carbon model for the SoC die.
    pub embodied: EmbodiedModel,
}

impl Default for Deployment {
    /// The paper's assumptions: 5-year lifetime, 380 gCO2e/kWh use-phase
    /// intensity, ACT-style embodied model.
    fn default() -> Self {
        Self {
            lifetime_years: 5.0,
            ci_use: grids::US_AVERAGE,
            embodied: EmbodiedModel::default(),
        }
    }
}

/// One row of the provisioning sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningRow {
    /// Core count of this configuration.
    pub cores: u32,
    /// The SoC configuration.
    pub soc: SocConfig,
    /// Task delay (one session).
    pub delay: Seconds,
    /// Task energy (one session).
    pub energy: Joules,
    /// Embodied carbon of the SoC, amortized over the app's share of the
    /// device's operational life and scaled to lifetime task executions.
    pub embodied: GramsCo2e,
    /// Operational carbon over all lifetime task executions.
    pub operational: GramsCo2e,
    /// Total carbon x task delay.
    pub tcdp: GramSecondsCo2e,
    /// Energy-delay product numerator terms for comparison plots:
    /// `E * D` in joule-seconds.
    pub edp: f64,
}

impl ProvisioningRow {
    /// Lifetime total carbon `tC`.
    #[must_use]
    pub fn total_carbon(&self) -> GramsCo2e {
        self.embodied + self.operational
    }

    /// Carbon efficiency `tCDP⁻¹` (for Fig. 10's y-axis).
    #[must_use]
    pub fn carbon_efficiency(&self) -> f64 {
        1.0 / self.tcdp.value()
    }
}

/// Sweeps core counts 4..=8 for `app` under `deployment`.
///
/// Each core count is an independent trace replay, so the rows are
/// evaluated in parallel (see [`cordoba_par`]); the returned list is in
/// ascending core order and identical to the sequential sweep at every
/// thread count.
///
/// # Errors
///
/// Propagates model-construction errors (cannot occur for the default
/// deployment).
pub fn sweep(app: &VrApp, deployment: &Deployment) -> Result<Vec<ProvisioningRow>, CarbonError> {
    let _span = cordoba_obs::span("soc/provisioning_sweep");
    let usage = UsageProfile::from_daily_hours(deployment.lifetime_years, app.daily_hours)?;
    let sessions = usage.operational_time().value() / app.session.value();
    let core_counts: Vec<u32> = (4..=8).collect();
    cordoba_par::try_par_map(&core_counts, |&cores| {
        provision_row(cores, app, deployment, sessions)
    })
}

/// A supervised provisioning sweep in flight: one slot per core count,
/// resumable until every configuration is evaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedProvisioning {
    core_counts: Vec<u32>,
    slots: Vec<Option<ProvisioningRow>>,
    stop: Option<StopReason>,
    panics: Vec<(u32, String)>,
}

impl SupervisedProvisioning {
    /// Why the last run/resume stopped early, or `None` when complete.
    #[must_use]
    pub fn stop(&self) -> Option<StopReason> {
        self.stop
    }

    /// `true` when every core count has been evaluated.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.stop.is_none()
    }

    /// Core counts evaluated so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total core counts in the sweep.
    #[must_use]
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Core counts whose trace replay panicked during the last
    /// run/resume, with the isolated panic messages, in ascending core
    /// order. The process survives; a resume retries these counts.
    #[must_use]
    pub fn panicked(&self) -> &[(u32, String)] {
        &self.panics
    }

    /// The finished rows in ascending core order, or `None` while
    /// configurations are pending or quarantined.
    #[must_use]
    pub fn rows(&self) -> Option<Vec<ProvisioningRow>> {
        if !self.is_complete() {
            return None;
        }
        self.slots.iter().cloned().collect()
    }

    /// Evaluates the still-pending core counts under `sup`, merging by
    /// core-count index. A fresh unbounded supervisor completes the sweep
    /// with rows bit-identical to [`sweep`].
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors for the first (lowest) failing
    /// pending core count.
    pub fn resume(
        &mut self,
        app: &VrApp,
        deployment: &Deployment,
        sup: &Supervisor,
    ) -> Result<(), CarbonError> {
        self.resume_with_threads(app, deployment, sup, cordoba_par::effective_threads())
    }

    /// [`resume`](Self::resume) with an explicit worker-thread count (1 =
    /// the exact sequential path, where a count-tripped supervisor stops at
    /// an exact configuration).
    ///
    /// # Errors
    ///
    /// See [`resume`](Self::resume).
    pub fn resume_with_threads(
        &mut self,
        app: &VrApp,
        deployment: &Deployment,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<(), CarbonError> {
        let usage = UsageProfile::from_daily_hours(deployment.lifetime_years, app.daily_hours)?;
        let sessions = usage.operational_time().value() / app.session.value();
        let pending: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if pending.is_empty() {
            self.stop = None;
            return Ok(());
        }
        let run = cordoba_par::par_map_supervised_with(&pending, threads, sup, |_, &idx| {
            provision_row(self.core_counts[idx], app, deployment, sessions)
        });
        let mut first_error: Option<CarbonError> = None;
        self.panics.clear();
        for (&idx, outcome) in pending.iter().zip(run.outcomes) {
            match outcome {
                Outcome::Done(Ok(row)) => self.slots[idx] = Some(row),
                Outcome::Done(Err(error)) => {
                    if first_error.is_none() {
                        first_error = Some(error);
                    }
                }
                // A panicking replay has no carbon-level error variant to
                // carry its message; quarantine it here (the process
                // survives) and leave the slot pending so a resume retries.
                Outcome::Panicked(message) => {
                    self.panics.push((self.core_counts[idx], message));
                }
                Outcome::Skipped => {}
            }
        }
        if let Some(error) = first_error {
            return Err(error);
        }
        self.stop = match run.stop {
            Some(reason) => Some(reason),
            // Quarantined counts are still unresolved: report a
            // cancellation-shaped stop so `rows()` stays `None` and a
            // resume knows there is work left.
            None if !self.panics.is_empty() => Some(StopReason::Cancelled),
            None => None,
        };
        Ok(())
    }
}

/// One provisioning row for a single core count (shared by [`sweep`] and
/// the supervised sweep, so both produce identical bits).
fn provision_row(
    cores: u32,
    app: &VrApp,
    deployment: &Deployment,
    sessions: f64,
) -> Result<ProvisioningRow, CarbonError> {
    let soc = SocConfig::provisioned(cores)?;
    let ScheduleResult {
        duration, energy, ..
    } = schedule_app(app, &soc);
    // The app occupies the device's full operational window for this
    // study (each task is assessed as if it were the device's workload).
    let embodied = soc.embodied_carbon(&deployment.embodied)?;
    let lifetime_energy = energy * sessions;
    let operational = operational_carbon(deployment.ci_use, lifetime_energy);
    let total = embodied + operational;
    Ok(ProvisioningRow {
        cores,
        soc,
        delay: duration,
        energy,
        embodied,
        operational,
        tcdp: total * duration,
        edp: energy.value() * duration.value(),
    })
}

/// [`sweep`] under a [`Supervisor`]: cancellation and deadline are checked
/// before each core count's trace replay, a panicking replay is isolated
/// into a structured error instead of aborting, and an interrupted sweep
/// resumes in place via [`SupervisedProvisioning::resume`].
///
/// # Errors
///
/// Propagates model-construction errors (cannot occur for the default
/// deployment).
pub fn sweep_supervised(
    app: &VrApp,
    deployment: &Deployment,
    sup: &Supervisor,
) -> Result<SupervisedProvisioning, CarbonError> {
    sweep_supervised_with_threads(app, deployment, sup, cordoba_par::effective_threads())
}

/// [`sweep_supervised`] with an explicit worker-thread count (1 = the
/// exact sequential path). Completed rows are bit-identical at every
/// thread count.
///
/// # Errors
///
/// See [`sweep_supervised`].
pub fn sweep_supervised_with_threads(
    app: &VrApp,
    deployment: &Deployment,
    sup: &Supervisor,
    threads: usize,
) -> Result<SupervisedProvisioning, CarbonError> {
    let _span = cordoba_obs::span("soc/provisioning_sweep_supervised");
    let core_counts: Vec<u32> = (4..=8).collect();
    let mut sweep = SupervisedProvisioning {
        slots: vec![None; core_counts.len()],
        core_counts,
        stop: None,
        panics: Vec::new(),
    };
    sweep.resume_with_threads(app, deployment, sup, threads)?;
    Ok(sweep)
}

/// The core count with the lowest tCDP in `rows`.
///
/// # Panics
///
/// Panics if `rows` is empty.
#[must_use]
pub fn optimal_cores(rows: &[ProvisioningRow]) -> u32 {
    rows.iter()
        .min_by(|a, b| a.tcdp.value().total_cmp(&b.tcdp.value()))
        .expect("rows must not be empty")
        .cores
}

/// tCDP improvement factor of the best configuration over the 8-core
/// baseline.
///
/// # Panics
///
/// Panics if `rows` lacks an 8-core entry or is empty.
#[must_use]
pub fn improvement_over_8core(rows: &[ProvisioningRow]) -> f64 {
    let base = rows
        .iter()
        .find(|r| r.cores == 8)
        .expect("rows must contain the 8-core baseline");
    let best = rows
        .iter()
        .min_by(|a, b| a.tcdp.value().total_cmp(&b.tcdp.value()))
        .expect("rows must not be empty");
    base.tcdp.value() / best.tcdp.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_prefers_four_cores() {
        // Fig. 10 / Table V: M-1 is tCDP-optimal at 4 cores, ~1.25x better
        // than the 8-core baseline.
        let rows = sweep(&VrApp::m1(), &Deployment::default()).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(optimal_cores(&rows), 4);
        let improvement = improvement_over_8core(&rows);
        assert!(
            (1.10..1.45).contains(&improvement),
            "M-1 improvement {improvement}"
        );
    }

    #[test]
    fn browser_and_social_do_not_prefer_four_cores() {
        // Fig. 10: B-1 and SG-1 suffer degraded tCDP at 4 cores.
        for app in [VrApp::b1(), VrApp::sg1()] {
            let rows = sweep(&app, &Deployment::default()).unwrap();
            let four = rows.iter().find(|r| r.cores == 4).unwrap();
            let best = optimal_cores(&rows);
            assert_ne!(best, 4, "{} should not be optimal at 4 cores", app.name);
            let best_row = rows.iter().find(|r| r.cores == best).unwrap();
            assert!(four.tcdp > best_row.tcdp);
        }
    }

    #[test]
    fn all_tasks_prefers_five_cores_with_modest_gain() {
        // Fig. 10: "even for the All Tasks category, reducing cores from 8
        // to 5 improves tCDP by 1.08x".
        let rows = sweep(&VrApp::all_tasks(), &Deployment::default()).unwrap();
        let best = optimal_cores(&rows);
        assert!((5..=6).contains(&best), "All-tasks optimum at {best}");
        let improvement = improvement_over_8core(&rows);
        assert!(
            (1.02..1.25).contains(&improvement),
            "All-tasks improvement {improvement}"
        );
    }

    #[test]
    fn supervised_sweep_matches_unsupervised_when_unbounded() {
        let direct = sweep(&VrApp::m1(), &Deployment::default()).unwrap();
        let sup = Supervisor::unbounded();
        let supervised = sweep_supervised(&VrApp::m1(), &Deployment::default(), &sup).unwrap();
        assert!(supervised.is_complete());
        assert!(supervised.panicked().is_empty());
        assert_eq!(supervised.rows().unwrap(), direct);
    }

    #[test]
    fn interrupted_provisioning_resumes_to_identical_rows() {
        let direct = sweep(&VrApp::b1(), &Deployment::default()).unwrap();
        for trip in [0u64, 2, 4] {
            let sup = Supervisor::tripping_after(trip);
            let mut supervised =
                sweep_supervised_with_threads(&VrApp::b1(), &Deployment::default(), &sup, 1)
                    .unwrap();
            assert_eq!(
                supervised.stop(),
                Some(StopReason::Cancelled),
                "trip {trip}"
            );
            assert!(supervised.rows().is_none());
            assert_eq!(supervised.completed(), trip as usize);
            supervised
                .resume_with_threads(
                    &VrApp::b1(),
                    &Deployment::default(),
                    &Supervisor::unbounded(),
                    2,
                )
                .unwrap();
            assert!(supervised.is_complete());
            assert_eq!(supervised.completed(), supervised.total());
            assert_eq!(supervised.rows().unwrap(), direct, "trip {trip}");
        }
    }

    #[test]
    fn embodied_monotone_in_cores() {
        let rows = sweep(&VrApp::m1(), &Deployment::default()).unwrap();
        for pair in rows.windows(2) {
            assert!(pair[1].embodied > pair[0].embodied);
        }
    }

    #[test]
    fn totals_compose() {
        let rows = sweep(&VrApp::g2(), &Deployment::default()).unwrap();
        for r in &rows {
            assert!((r.total_carbon().value() - (r.embodied + r.operational).value()).abs() < 1e-9);
            assert!(
                (r.tcdp.value() - r.total_carbon().value() * r.delay.value()).abs()
                    < 1e-6 * r.tcdp.value()
            );
            assert!(r.carbon_efficiency() > 0.0);
        }
    }

    #[test]
    fn delay_never_improves_with_fewer_cores() {
        for app in VrApp::studied_tasks() {
            let rows = sweep(&app, &Deployment::default()).unwrap();
            for pair in rows.windows(2) {
                assert!(
                    pair[0].delay >= pair[1].delay,
                    "{}: delay should be non-increasing in cores",
                    app.name
                );
            }
        }
    }
}
