//! SoC configurations for the hardware-provisioning study (§VI-D).
//!
//! Provisioning is expressed exactly as eq. VI.12: the SoC has a full
//! complement of cores and a 0/1 selection vector picks which are
//! populated. [`SocConfig::provisioned`] reproduces the paper's 4- to
//! 8-core sweep.

use crate::cores::CoreKind;
use cordoba_carbon::embodied::{Die, EmbodiedModel};
use cordoba_carbon::fab::ProcessNode;
use cordoba_carbon::units::{GramsCo2e, SquareCentimeters, SquareMillimeters, Watts};
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A provisioned SoC: a set of CPU cores plus fixed uncore (GPU, DSP,
/// memory controllers) area and power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    name: String,
    cores: Vec<CoreKind>,
    uncore_area: SquareCentimeters,
    uncore_leakage: Watts,
    node: ProcessNode,
}

impl SocConfig {
    /// Uncore area of the XR2-class SoC model (GPU, DSP, modem, I/O).
    pub const UNCORE_AREA_MM2: f64 = 40.0;

    /// Creates a SoC from an explicit core list.
    ///
    /// # Errors
    ///
    /// Returns an error if `cores` is empty.
    pub fn new(name: impl Into<String>, cores: Vec<CoreKind>) -> Result<Self, CarbonError> {
        if cores.is_empty() {
            return Err(CarbonError::Empty { what: "soc cores" });
        }
        let mut cores = cores;
        // Keep fastest-first order; the scheduler relies on it.
        cores.sort_by(|a, b| b.performance().total_cmp(&a.performance()));
        Ok(Self {
            name: name.into(),
            cores,
            uncore_area: SquareMillimeters::new(Self::UNCORE_AREA_MM2).to_square_centimeters(),
            uncore_leakage: Watts::new(0.10),
            node: ProcessNode::N7,
        })
    }

    /// The full octa-core Quest-2-class SoC: 4 silver + 3 gold + 1 prime.
    #[must_use]
    pub fn quest2() -> Self {
        Self::provisioned(8).expect("8 is a valid provisioning level")
    }

    /// The paper's provisioning sweep: `count` populated cores, 4..=8.
    ///
    /// Cores are removed from the full SoC in balanced silver/gold pairs,
    /// matching the eq. VI.12 selection (the 4-core point keeps 2 silver +
    /// 1 gold + 1 prime, i.e. "2 gold-class + 2 silver" in Table V's
    /// simplified description).
    ///
    /// # Errors
    ///
    /// Returns an error if `count` is outside `4..=8`.
    pub fn provisioned(count: u32) -> Result<Self, CarbonError> {
        let (silver, gold) = match count {
            8 => (4, 3),
            7 => (3, 3),
            6 => (3, 2),
            5 => (2, 2),
            4 => (2, 1),
            _ => {
                return Err(CarbonError::out_of_range(
                    "provisioned cores",
                    f64::from(count),
                    4.0,
                    8.0,
                ))
            }
        };
        let mut cores = vec![CoreKind::Prime];
        cores.extend(std::iter::repeat_n(CoreKind::Gold, gold));
        cores.extend(std::iter::repeat_n(CoreKind::Silver, silver));
        Self::new(format!("{count}-core"), cores)
    }

    /// The configuration name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The populated cores, fastest first.
    #[must_use]
    pub fn cores(&self) -> &[CoreKind] {
        &self.cores
    }

    /// Number of populated cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The process node.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// Total die area: core slices + uncore.
    #[must_use]
    pub fn die_area(&self) -> SquareCentimeters {
        self.cores
            .iter()
            .map(|c| c.slice_area())
            .sum::<SquareCentimeters>()
            + self.uncore_area
    }

    /// Total aggregate compute capacity (sum of core performances, in
    /// silver-core units).
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.cores.iter().map(|c| c.performance()).sum()
    }

    /// Total leakage power (cores + uncore).
    #[must_use]
    pub fn leakage_power(&self) -> Watts {
        self.cores.iter().map(|c| c.leakage_power()).sum::<Watts>() + self.uncore_leakage
    }

    /// Embodied carbon of the SoC die.
    ///
    /// # Errors
    ///
    /// Propagates die-construction errors (cannot occur for validated
    /// configurations).
    pub fn embodied_carbon(&self, model: &EmbodiedModel) -> Result<GramsCo2e, CarbonError> {
        let die = Die::new(self.name.clone(), self.die_area(), self.node)?;
        Ok(model.die_carbon(&die))
    }
}

impl fmt::Display for SocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let silver = self
            .cores
            .iter()
            .filter(|c| **c == CoreKind::Silver)
            .count();
        let gold = self.cores.iter().filter(|c| **c == CoreKind::Gold).count();
        let prime = self.cores.iter().filter(|c| **c == CoreKind::Prime).count();
        write!(
            f,
            "{} ({silver} silver + {gold} gold + {prime} prime, {:.2} cm^2)",
            self.name,
            self.die_area().value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quest2_matches_paper_area() {
        // Table V "before": 2.25 cm^2, 8 cores.
        let soc = SocConfig::quest2();
        assert_eq!(soc.core_count(), 8);
        assert!((soc.die_area().value() - 2.25).abs() < 1e-9);
    }

    #[test]
    fn four_core_matches_paper_area() {
        // Table V "after": 1.35 cm^2 (1.67x reduction).
        let soc = SocConfig::provisioned(4).unwrap();
        assert_eq!(soc.core_count(), 4);
        assert!((soc.die_area().value() - 1.35).abs() < 1e-9);
        let ratio = SocConfig::quest2().die_area().value() / soc.die_area().value();
        assert!((ratio - 1.67).abs() < 0.01);
    }

    #[test]
    fn provisioning_sweep_is_monotone() {
        let mut prev_area = 0.0;
        let mut prev_capacity = 0.0;
        for count in 4..=8 {
            let soc = SocConfig::provisioned(count).unwrap();
            assert_eq!(soc.core_count() as u32, count);
            assert!(soc.die_area().value() > prev_area);
            assert!(soc.capacity() > prev_capacity);
            prev_area = soc.die_area().value();
            prev_capacity = soc.capacity();
        }
        assert!(SocConfig::provisioned(3).is_err());
        assert!(SocConfig::provisioned(9).is_err());
    }

    #[test]
    fn cores_sorted_fastest_first() {
        let soc = SocConfig::quest2();
        for pair in soc.cores().windows(2) {
            assert!(pair[0].performance() >= pair[1].performance());
        }
        assert_eq!(soc.cores()[0], CoreKind::Prime);
    }

    #[test]
    fn embodied_scales_with_provisioning() {
        let model = EmbodiedModel::default();
        let big = SocConfig::quest2().embodied_carbon(&model).unwrap();
        let small = SocConfig::provisioned(4)
            .unwrap()
            .embodied_carbon(&model)
            .unwrap();
        // Smaller die + better yield: close to the paper's ~2x.
        let ratio = big.value() / small.value();
        assert!(ratio > 1.6 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn leakage_falls_with_fewer_cores() {
        assert!(
            SocConfig::provisioned(4).unwrap().leakage_power()
                < SocConfig::quest2().leakage_power()
        );
    }

    #[test]
    fn display_shows_mix() {
        let s = SocConfig::provisioned(4).unwrap().to_string();
        assert!(s.contains("2 silver + 1 gold + 1 prime"), "{s}");
    }

    #[test]
    fn custom_core_list() {
        let soc = SocConfig::new("custom", vec![CoreKind::Silver, CoreKind::Prime]).unwrap();
        assert_eq!(soc.cores()[0], CoreKind::Prime);
        assert!(SocConfig::new("empty", vec![]).is_err());
    }
}
