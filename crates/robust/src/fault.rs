//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] bundles corruption probabilities with a seed; every
//! `corrupt_*` method derives its own generator from that seed (salted per
//! operation), so calls are independent, order-insensitive, and exactly
//! reproducible. Rates are clamped to `[0, 1]` at construction, which
//! keeps the plan total: no input can make the injector itself fail.

use cordoba_accel::params::TechTuning;
use cordoba_carbon::units::{CarbonIntensity, Seconds};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Default multiplier for spiked values.
const DEFAULT_SPIKE_SCALE: f64 = 1.0e3;

/// Per-operation salts so each `corrupt_*` call draws from an independent
/// deterministic stream (two operations on the same plan never alias).
const SALT_TRACE: u64 = 0x0074_7261_6365;
const SALT_VALUES: u64 = 0x7661_6c73_0000;
const SALT_TUNING: u64 = 0x7475_6e65_0000;
const SALT_BUDGET: u64 = 0x6275_6467_0000;
const SALT_TRIP: u64 = 0x7472_6970_0000;

/// Clamps a probability knob into `[0, 1]`, mapping non-finite input to 0
/// so `Rng::gen_bool` can never assert.
fn clamp_rate(p: f64) -> f64 {
    if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// A seeded recipe for corrupting traces, configurations, and budgets.
///
/// Build one with [`FaultPlan::new`] (all faults off) or
/// [`FaultPlan::chaos`] (every fault class enabled at moderate rates), then
/// tune individual rates with the `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    duplicate_rate: f64,
    shuffle: bool,
    nan_rate: f64,
    negative_rate: f64,
    spike_rate: f64,
    spike_scale: f64,
}

impl FaultPlan {
    /// A plan with every fault disabled; corruption methods are identity
    /// transforms until rates are raised.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            shuffle: false,
            nan_rate: 0.0,
            negative_rate: 0.0,
            spike_rate: 0.0,
            spike_scale: DEFAULT_SPIKE_SCALE,
        }
    }

    /// A preset with every fault class active at rates aggressive enough
    /// that a few-dozen-sample trace almost surely carries several faults.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        Self::new(seed)
            .with_drop_rate(0.15)
            .with_duplicate_rate(0.15)
            .with_shuffle(true)
            .with_nan_rate(0.08)
            .with_negative_rate(0.08)
            .with_spike_rate(0.08)
    }

    /// Sets the probability of silently dropping each trace sample
    /// (clamped to `[0, 1]`; non-finite input disables the fault).
    #[must_use]
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = clamp_rate(p);
        self
    }

    /// Sets the probability of emitting each trace sample twice (clamped
    /// to `[0, 1]`; non-finite input disables the fault).
    #[must_use]
    pub fn with_duplicate_rate(mut self, p: f64) -> Self {
        self.duplicate_rate = clamp_rate(p);
        self
    }

    /// Enables or disables shuffling the corrupted trace out of
    /// chronological order.
    #[must_use]
    pub fn with_shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Sets the probability of replacing a value with NaN (clamped to
    /// `[0, 1]`; non-finite input disables the fault).
    #[must_use]
    pub fn with_nan_rate(mut self, p: f64) -> Self {
        self.nan_rate = clamp_rate(p);
        self
    }

    /// Sets the probability of flipping a value negative (clamped to
    /// `[0, 1]`; non-finite input disables the fault).
    #[must_use]
    pub fn with_negative_rate(mut self, p: f64) -> Self {
        self.negative_rate = clamp_rate(p);
        self
    }

    /// Sets the probability of spiking a value by [`spike_scale`]
    /// (clamped to `[0, 1]`; non-finite input disables the fault).
    ///
    /// [`spike_scale`]: FaultPlan::with_spike_scale
    #[must_use]
    pub fn with_spike_rate(mut self, p: f64) -> Self {
        self.spike_rate = clamp_rate(p);
        self
    }

    /// Sets the spike multiplier; non-finite or sub-unity magnitudes fall
    /// back to the default so a spike always distorts.
    #[must_use]
    pub fn with_spike_scale(mut self, scale: f64) -> Self {
        self.spike_scale = if scale.is_finite() && scale.abs() >= 1.0 {
            scale.abs()
        } else {
            DEFAULT_SPIKE_SCALE
        };
        self
    }

    /// The seed every corruption stream derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A fresh generator for one corruption operation, salted so distinct
    /// operations draw from distinct deterministic streams.
    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Applies the value-fault ladder (NaN, then negative, then spike) to
    /// one sample.
    fn corrupt_one(&self, v: f64, rng: &mut StdRng) -> f64 {
        if rng.gen_bool(self.nan_rate) {
            return f64::NAN;
        }
        if rng.gen_bool(self.negative_rate) {
            return -v.abs() - 1.0;
        }
        if rng.gen_bool(self.spike_rate) {
            return v.abs().max(1.0) * self.spike_scale;
        }
        v
    }

    /// Corrupts a `(time, intensity)` trace: per-sample drop, value
    /// faults, duplication, then an optional whole-trace shuffle.
    ///
    /// Timestamps are left intact so duplicates collide exactly (the
    /// hardest case for a sanitizer to merge).
    #[must_use]
    pub fn corrupt_trace(
        &self,
        samples: &[(Seconds, CarbonIntensity)],
    ) -> Vec<(Seconds, CarbonIntensity)> {
        let mut rng = self.rng(SALT_TRACE);
        let mut out = Vec::with_capacity(samples.len());
        for &(t, ci) in samples {
            if rng.gen_bool(self.drop_rate) {
                continue;
            }
            // cordoba-lint: allow(unit-laundering) — a fault injector exists to forge invalid intensities
            let faulty = CarbonIntensity::new(self.corrupt_one(ci.value(), &mut rng));
            out.push((t, faulty));
            if rng.gen_bool(self.duplicate_rate) {
                out.push((t, faulty));
            }
        }
        if self.shuffle {
            out.shuffle(&mut rng);
        }
        out
    }

    /// Applies the value-fault ladder to an arbitrary series (no drops or
    /// duplication — the output has the input's length).
    #[must_use]
    pub fn corrupt_values(&self, values: &[f64]) -> Vec<f64> {
        let mut rng = self.rng(SALT_VALUES);
        values
            .iter()
            .map(|&v| self.corrupt_one(v, &mut rng))
            .collect()
    }

    /// Rate-driven corruption of a technology-tuning block: each plain
    /// scalar field passes through the value-fault ladder independently.
    ///
    /// With all rates at zero this is the identity; use
    /// [`poison_tuning`](Self::poison_tuning) when a fault must be
    /// guaranteed.
    #[must_use]
    pub fn corrupt_tuning(&self, tuning: &TechTuning) -> TechTuning {
        let mut rng = self.rng(SALT_TUNING);
        let mut t = *tuning;
        for field in Self::tuning_fields(&mut t) {
            *field = self.corrupt_one(*field, &mut rng);
        }
        t
    }

    /// Corrupts exactly one scalar field of a tuning block with a
    /// guaranteed-invalid value (NaN, negative, or an absurd magnitude),
    /// choosing field and poison from the plan's seed.
    ///
    /// The result is always distinguishable from the input, which makes it
    /// the right tool for "one poisoned configuration in a sweep" tests.
    #[must_use]
    pub fn poison_tuning(&self, tuning: &TechTuning) -> TechTuning {
        let mut rng = self.rng(SALT_TUNING.wrapping_add(1));
        let mut t = *tuning;
        let poison = match rng.gen_range(0..3u32) {
            0 => f64::NAN,
            1 => -1.0,
            _ => 1.0e30,
        };
        let fields = Self::tuning_fields(&mut t);
        let pick = rng.gen_range(0..fields.len().max(1));
        if let Some(field) = fields.into_iter().nth(pick) {
            *field = poison;
        }
        t
    }

    /// The plain scalar fields of a tuning block that the injector is
    /// allowed to corrupt (typed-unit fields are covered indirectly: a
    /// poisoned area or exponent propagates into every derived quantity).
    fn tuning_fields(t: &mut TechTuning) -> [&mut f64; 9] {
        [
            &mut t.utilization,
            &mut t.utilization_knee_units,
            &mut t.sram_energy_exponent,
            &mut t.sram_bytes_per_mac,
            &mut t.mac_unit_area_mm2,
            &mut t.sram_area_mm2_per_mib,
            &mut t.base_area_mm2,
            &mut t.refetch_exponent,
            &mut t.refetch_scale,
        ]
    }

    /// A starved iteration budget: a deterministic draw from
    /// `[0, min(nominal, 3)]`, small enough that any bisection over a
    /// non-trivial interval must report `NotConverged`.
    #[must_use]
    pub fn starved_budget(&self, nominal: usize) -> usize {
        let mut rng = self.rng(SALT_BUDGET);
        let cap = nominal.min(3);
        rng.gen_range(0..=cap)
    }

    /// A deterministic supervision trip point: a draw from `[0, total]`
    /// marking how many progress units a supervised pipeline completes
    /// before it is interrupted (feed it to `Supervisor::tripping_after`).
    ///
    /// The full range is inclusive on both ends so a suite of seeds covers
    /// the edge cases — tripping before any work (`0`) and tripping after
    /// the last unit (`total`, which never fires).
    #[must_use]
    pub fn trip_point(&self, total: u64) -> u64 {
        let mut rng = self.rng(SALT_TRIP);
        rng.gen_range(0..=total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<(Seconds, CarbonIntensity)> {
        (0..48)
            .map(|h| {
                (
                    Seconds::from_hours(f64::from(h)),
                    CarbonIntensity::new(400.0 + 50.0 * f64::from(h % 24)),
                )
            })
            .collect()
    }

    #[test]
    fn zero_rate_plan_is_identity_on_traces() {
        let clean = trace();
        assert_eq!(FaultPlan::new(7).corrupt_trace(&clean), clean);
        assert_eq!(
            FaultPlan::new(7).corrupt_values(&[1.0, 2.0, 3.0]),
            vec![1.0, 2.0, 3.0]
        );
    }

    /// Bitwise key so NaN-carrying corruptions still compare equal to
    /// their reproductions (`NaN != NaN` under `PartialEq`).
    fn bits(samples: &[(Seconds, CarbonIntensity)]) -> Vec<(u64, u64)> {
        samples
            .iter()
            .map(|&(t, ci)| (t.value().to_bits(), ci.value().to_bits()))
            .collect()
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let clean = trace();
        let a = FaultPlan::chaos(123).corrupt_trace(&clean);
        let b = FaultPlan::chaos(123).corrupt_trace(&clean);
        assert_eq!(bits(&a), bits(&b));
        let c = FaultPlan::chaos(124).corrupt_trace(&clean);
        assert_ne!(
            bits(&a),
            bits(&c),
            "different seeds should corrupt differently"
        );
    }

    #[test]
    fn chaos_actually_corrupts() {
        let clean = trace();
        let bad = FaultPlan::chaos(1).corrupt_trace(&clean);
        assert_ne!(bad, clean);
        let has_fault = bad
            .iter()
            .any(|&(_, ci)| !ci.value().is_finite() || ci.value() < 0.0);
        let sorted = bad.windows(2).all(|w| w[0].0.value() <= w[1].0.value());
        assert!(
            has_fault || !sorted || bad.len() != clean.len(),
            "chaos plan left a 48-sample trace untouched"
        );
    }

    #[test]
    fn rates_are_clamped_so_gen_bool_cannot_assert() {
        let plan = FaultPlan::new(9)
            .with_drop_rate(7.0)
            .with_duplicate_rate(-3.0)
            .with_nan_rate(f64::NAN)
            .with_negative_rate(f64::INFINITY)
            .with_spike_rate(2.0)
            .with_spike_scale(f64::NAN);
        // drop=1.0 drops everything; nothing panics on the way.
        assert!(plan.corrupt_trace(&trace()).is_empty());
    }

    #[test]
    fn poison_tuning_always_breaks_something() {
        let base = TechTuning::n7();
        for seed in 0..64 {
            let poisoned = FaultPlan::new(seed).poison_tuning(&base);
            assert_ne!(
                poisoned, base,
                "seed {seed}: poison_tuning returned the clean tuning"
            );
        }
    }

    #[test]
    fn trip_point_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let plan = FaultPlan::new(seed);
            let t = plan.trip_point(10);
            assert_eq!(t, plan.trip_point(10), "seed {seed}: trip_point drifted");
            assert!(t <= 10);
            assert_eq!(plan.trip_point(0), 0);
        }
        let hits: std::collections::HashSet<u64> =
            (0..64).map(|s| FaultPlan::new(s).trip_point(10)).collect();
        assert!(
            hits.len() > 4,
            "64 seeds should spread trip points across [0, 10]"
        );
    }

    #[test]
    fn starved_budget_is_tiny_and_bounded() {
        for seed in 0..64 {
            let plan = FaultPlan::new(seed);
            assert!(plan.starved_budget(1_000_000) <= 3);
            assert_eq!(plan.starved_budget(0), 0);
            assert!(plan.starved_budget(1) <= 1);
        }
    }
}
