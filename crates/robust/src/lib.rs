//! Fault injection for CORDOBA resilience testing.
//!
//! Real carbon-intensity feeds drop samples, repeat timestamps, arrive out
//! of order, and occasionally report garbage; configuration files get
//! hand-edited into inconsistency; iterative solvers run under time
//! budgets. CORDOBA's contract under all of these is *graceful
//! degradation*: every subsystem returns a structured error or a
//! degraded-but-finite result — never a panic, never a NaN.
//!
//! This crate provides the deterministic, seeded [`fault::FaultPlan`]
//! injector that the workspace's fault-injection suite (and CI job) uses to
//! exercise that contract:
//!
//! * **trace faults** — drop, duplicate, and reorder `(time, intensity)`
//!   samples; replace intensities with NaN, negative, or spiked values
//!   (absorbed by `TraceCi::sanitize` and `FallbackCi` in
//!   `cordoba-carbon`);
//! * **config faults** — poison `TechTuning` parameters so a design point
//!   fails characterization (quarantined by `evaluate_space_resilient` in
//!   the core crate);
//! * **budget faults** — starve iteration budgets so solvers must report
//!   `NotConverged` instead of spinning;
//! * **supervision faults** — interrupt long-running pipelines mid-flight
//!   at seeded trip points ([`fault::FaultPlan::trip_point`]) to prove
//!   that checkpoint/resume reproduces the uninterrupted result bit for
//!   bit (the [`supervise`] module, re-exported from `cordoba-par`,
//!   provides the [`supervise::Supervisor`] handle itself).
//!
//! Everything is derived from a single `u64` seed, so any failure found by
//! the suite reproduces exactly from its seed alone.
//!
//! ```
//! use cordoba_robust::fault::FaultPlan;
//! use cordoba_carbon::units::{CarbonIntensity, Seconds};
//!
//! let clean: Vec<(Seconds, CarbonIntensity)> = (0..24)
//!     .map(|h| (Seconds::from_hours(f64::from(h)), CarbonIntensity::new(400.0)))
//!     .collect();
//! let plan = FaultPlan::chaos(42);
//! let corrupted = plan.corrupt_trace(&clean);
//! // Deterministic: the same seed always produces the same corruption
//! // (compared via Debug because injected NaNs defeat `==`).
//! assert_eq!(format!("{corrupted:?}"), format!("{:?}", plan.corrupt_trace(&clean)));
//! ```

pub mod fault;

pub use cordoba_par::supervise;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::fault::FaultPlan;
    pub use cordoba_par::supervise::{StopReason, Supervisor};
}
