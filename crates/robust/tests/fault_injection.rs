//! Fault-injection suite: every CORDOBA subsystem must return a structured
//! error or a degraded-but-finite result under corrupted input — never
//! panic, never NaN.
//!
//! The explicit seed loops below push well over a thousand distinct
//! [`FaultPlan`] corruptions through the sanitizer, the fallback CI chain,
//! the resilient design-space sweep, the budgeted β-transition solver, and
//! the event-driven scheduler; the `proptest!` block adds randomized rate
//! combinations on top.

use cordoba::prelude::*;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::params::TechTuning;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::prelude::{
    grids, CarbonIntensity, CiSource, DiurnalCi, FallbackCi, SanitizePolicy, Seconds, TraceCi,
};
use cordoba_robust::fault::FaultPlan;
use cordoba_soc::prelude::{simulate_events, ActivityTrace, Segment, SocConfig, VrApp};
use cordoba_workloads::task::Task;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A clean two-day hourly trace with a mild diurnal swing.
fn clean_trace() -> Vec<(Seconds, CarbonIntensity)> {
    (0..48)
        .map(|h| {
            let swing = 120.0 * (f64::from(h % 24) / 24.0 * std::f64::consts::TAU).sin();
            (
                Seconds::from_hours(f64::from(h)),
                CarbonIntensity::new(400.0 + swing),
            )
        })
        .collect()
}

/// Probes a CI source at many offsets and asserts finite, non-negative
/// intensity everywhere.
fn assert_source_sane(source: &dyn CiSource, seed: u64) {
    for h in 0..96 {
        let ci = source.at(Seconds::from_hours(f64::from(h)));
        assert!(
            ci.value().is_finite() && ci.value() >= 0.0,
            "seed {seed}: intensity {ci:?} at hour {h}"
        );
    }
}

#[test]
fn sanitizer_survives_a_thousand_corrupted_traces() {
    let clean = clean_trace();
    let mut recovered = 0usize;
    for seed in 0..1000u64 {
        let corrupted = FaultPlan::chaos(seed).corrupt_trace(&clean);
        for policy in [SanitizePolicy::lenient(), SanitizePolicy::production()] {
            // A structured `Err` (e.g. every sample dropped) is an
            // acceptable outcome; a panic or NaN is not.
            if let Ok((trace, report)) = TraceCi::sanitize(corrupted.clone(), &policy) {
                recovered += 1;
                assert_eq!(report.input_samples, corrupted.len(), "seed {seed}");
                assert_eq!(report.output_samples, trace.len(), "seed {seed}");
                assert_source_sane(&trace, seed);
            }
        }
    }
    // chaos drops ~15% of samples, so the sanitizer should recover the
    // overwhelming majority of 48-sample traces.
    assert!(
        recovered > 1800,
        "sanitizer recovered only {recovered}/2000 corrupted traces"
    );
}

#[test]
fn fallback_chain_yields_finite_intensity_under_corruption() {
    let clean = clean_trace();
    let diurnal = DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(120.0))
        .expect("valid diurnal model");
    for seed in 0..200u64 {
        let corrupted = FaultPlan::chaos(seed).corrupt_trace(&clean);
        let chain = match TraceCi::sanitize(corrupted, &SanitizePolicy::production()) {
            Ok((trace, _)) => FallbackCi::standard(trace, Some(diurnal), grids::US_AVERAGE)
                .expect("chain with all tiers builds"),
            // Trace beyond repair: the chain still stands on its fallbacks.
            Err(_) => FallbackCi::builder()
                .tier("diurnal", Box::new(diurnal))
                .tier(
                    "constant",
                    Box::new(cordoba_carbon::prelude::ConstantCi::new(grids::US_AVERAGE)),
                )
                .build()
                .expect("fallback-only chain builds"),
        };
        assert_source_sane(&chain, seed);
        let health = chain.health();
        assert_eq!(health.queries, 96, "seed {seed}");
        assert_eq!(health.exhausted, 0, "seed {seed}: {health}");
    }
}

#[test]
fn resilient_sweep_is_total_under_config_corruption() {
    let task = Task::xr_5_kernels();
    let embodied = EmbodiedModel::default();
    let clean: Vec<AcceleratorConfig> = design_space().into_iter().take(12).collect();
    let strict = evaluate_space(&clean, &task, &embodied).expect("clean space evaluates");

    for seed in 0..100u64 {
        let plan = FaultPlan::new(seed);
        let mut configs = clean.clone();
        let poisoned = AcceleratorConfig::with_tuning(
            format!("poison-{seed}"),
            16,
            cordoba_carbon::prelude::Bytes::from_mebibytes(8.0),
            cordoba_accel::config::MemoryIntegration::OnDie,
            plan.poison_tuning(&TechTuning::n7()),
        )
        .expect("poisoned tuning still constructs");
        configs.push(poisoned);

        let eval = evaluate_space_resilient(&configs, &task, &embodied);
        // Totality: every configuration lands in exactly one bucket, and
        // everything that survives is finite.
        assert_eq!(
            eval.points.len() + eval.failures.len(),
            configs.len(),
            "seed {seed}"
        );
        for p in &eval.points {
            assert!(
                p.delay.is_finite() && p.energy.is_finite() && p.embodied.is_finite(),
                "seed {seed}: non-finite survivor {p:?}"
            );
        }
        // The clean prefix is never affected by the poisoned tail.
        assert_eq!(
            &eval.points[..strict.len().min(eval.points.len())],
            &strict[..strict.len().min(eval.points.len())],
            "seed {seed}"
        );
        assert!(
            eval.points.len() >= strict.len(),
            "seed {seed}: clean configs lost"
        );
    }
}

#[test]
fn nan_poisoned_config_is_quarantined_not_fatal() {
    let task = Task::xr_5_kernels();
    let embodied = EmbodiedModel::default();
    let mut configs: Vec<AcceleratorConfig> = design_space().into_iter().take(8).collect();
    let mut tuning = TechTuning::n7();
    tuning.mac_unit_area_mm2 = f64::NAN;
    configs.push(
        AcceleratorConfig::with_tuning(
            "nan-poison",
            16,
            cordoba_carbon::prelude::Bytes::from_mebibytes(8.0),
            cordoba_accel::config::MemoryIntegration::OnDie,
            tuning,
        )
        .expect("constructs"),
    );
    let eval = evaluate_space_resilient(&configs, &task, &embodied);
    assert!(eval.degraded());
    assert_eq!(eval.failures.len(), 1);
    assert_eq!(eval.failures[0].name, "nan-poison");
    assert_eq!(eval.points.len(), 8);
}

#[test]
fn beta_solver_reports_not_converged_under_starved_budgets() {
    let embodied = EmbodiedModel::default();
    let configs: Vec<AcceleratorConfig> = design_space().into_iter().take(24).collect();
    let points = evaluate_space(&configs, &Task::ai_5_kernels(), &embodied).expect("evaluates");
    let sweep = BetaSweep::run(&points);
    for seed in 0..200u64 {
        let budget = FaultPlan::new(seed).starved_budget(10_000);
        let solve = sweep
            .solve_transitions(0.0, 1.0e6, 1.0e-9, budget)
            .expect("parameters are valid");
        match solve {
            BetaSolve::Converged { .. } => {
                // Only possible when a single candidate dominates the whole
                // range; with a 1e-9 tolerance and <=3 evaluations, any
                // bisection work at all would blow the budget.
                assert!(
                    budget >= 2 || sweep.surviving_names().len() <= 1,
                    "seed {seed}"
                );
            }
            BetaSolve::NotConverged {
                best_so_far,
                evaluations,
            } => {
                assert!(evaluations <= budget, "seed {seed}");
                for t in &best_so_far {
                    assert!(t.beta.is_finite(), "seed {seed}: {t:?}");
                }
            }
        }
    }
}

#[test]
fn event_sim_stays_finite_under_hostile_demands() {
    let soc = SocConfig::quest2();
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let app = VrApp {
            name: format!("hostile-{seed}"),
            main_demand: 10.0f64.powi(rng.gen_range(-2..8)),
            background_demand: 10.0f64.powi(rng.gen_range(-2..8)),
            ..VrApp::m1()
        };
        let threads = rng.gen_range(1..=9u32);
        let trace = ActivityTrace::new(vec![Segment {
            duration: Seconds::new(1.0),
            threads,
        }])
        .expect("non-empty trace");
        let r = simulate_events(&trace, &app, &soc, 40);
        assert!(
            r.duration.is_finite() && r.energy.is_finite(),
            "seed {seed}: {r:?}"
        );
        // The watchdog bounds runtime at 50x the segment length (plus at
        // most one tick of overshoot).
        assert!(
            r.duration.value() <= 50.0 + 1.0 / 40.0 + 1e-6,
            "seed {seed}"
        );
        if r.truncated {
            assert!(r.duration.value() > 0.0, "seed {seed}: empty truncated run");
        }
    }
}

proptest! {
    /// Arbitrary rate combinations never make sanitize panic or emit NaN.
    #[test]
    fn prop_sanitize_never_emits_nan(
        seed in 0u64..1_000_000,
        drop in 0.0f64..1.0,
        nan in 0.0f64..1.0,
        neg in 0.0f64..1.0,
        spike in 0.0f64..1.0,
    ) {
        let plan = FaultPlan::new(seed)
            .with_drop_rate(drop)
            .with_duplicate_rate(0.2)
            .with_shuffle(true)
            .with_nan_rate(nan)
            .with_negative_rate(neg)
            .with_spike_rate(spike);
        let corrupted = plan.corrupt_trace(&clean_trace());
        if let Ok((trace, report)) = TraceCi::sanitize(corrupted, &SanitizePolicy::lenient()) {
            prop_assert!(report.output_samples >= 1);
            for h in 0..48 {
                let ci = trace.at(Seconds::from_hours(f64::from(h)));
                prop_assert!(ci.value().is_finite() && ci.value() >= 0.0);
            }
        }
    }

    /// Value corruption preserves series length and is reproducible.
    #[test]
    fn prop_corrupt_values_is_deterministic(seed in 0u64..1_000_000) {
        let plan = FaultPlan::chaos(seed);
        let input: Vec<f64> = (0..32).map(f64::from).collect();
        let a = plan.corrupt_values(&input);
        let b = plan.corrupt_values(&input);
        prop_assert_eq!(a.len(), input.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Starved budgets are always within [0, min(nominal, 3)].
    #[test]
    fn prop_starved_budget_bounded(seed in 0u64..1_000_000, nominal in 0usize..100_000) {
        let b = FaultPlan::new(seed).starved_budget(nominal);
        prop_assert!(b <= nominal.min(3));
    }
}
