//! Supervision fault injection: interrupt long-running pipelines at
//! seeded trip points and prove the workspace's checkpoint/resume
//! invariant — a run interrupted at *any* point and resumed is
//! bit-identical to an uninterrupted run at any thread count — plus the
//! panic-isolation contract (a panicking work unit is quarantined in
//! input order; the process survives).
//!
//! Every interruption point is derived from a `FaultPlan` seed
//! ([`FaultPlan::trip_point`]), so any failure reproduces exactly from
//! the seed printed in the assertion message.

use cordoba::prelude::*;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::params::TechTuning;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::prelude::{grids, GramsCo2e, Joules, Seconds, SquareCentimeters};
use cordoba_robust::prelude::*;
use cordoba_robust::supervise::{par_map_supervised_with, Outcome};
use cordoba_workloads::task::Task;
use std::time::Duration;

/// Marker that tells the filtering panic hook to swallow the report;
/// intentional panics in these tests would otherwise spam the log.
const QUIET: &str = "[quiet-test-panic]";

fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(QUIET))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(QUIET));
            if !quiet {
                default(info);
            }
        }));
    });
}

/// A small hand-built design set: cheap enough for thousand-seed loops,
/// and with a space in each name to exercise checkpoint name parsing.
fn synthetic_points() -> Vec<DesignPoint> {
    (1..=6)
        .map(|i| {
            let f = f64::from(i);
            DesignPoint::new(
                format!("design {i}"),
                Seconds::new(0.8 + 0.1 * f),
                Joules::new(30.0 + 3.0 * f),
                GramsCo2e::new(9000.0 - 400.0 * f),
                SquareCentimeters::new(0.4 + 0.05 * f),
            )
            .expect("synthetic design points are valid")
        })
        .collect()
}

/// The core invariant, at a thousand seeded interruption points: an
/// `OpTimeSweep` cancelled mid-flight, checkpointed through the text
/// format, and resumed lands on the exact bits of the uninterrupted run
/// — regardless of the thread count on either side of the cut.
#[test]
fn sweep_interrupted_at_a_thousand_seeded_points_resumes_bit_identically() {
    let pts = synthetic_points();
    let counts = log_sweep(3, 9, 2);
    let rows = counts.len() as u64;
    let baseline = OpTimeSweep::new(pts.clone(), counts.clone(), grids::US_AVERAGE)
        .expect("baseline sweep builds");
    for seed in 0..1000u64 {
        let plan = FaultPlan::new(seed);
        let trip = plan.trip_point(rows);
        // Even seeds interrupt on the exact sequential path (trip point is
        // then exact); odd seeds interrupt mid-parallel (the cut set is
        // scheduler-dependent, the merged result must not be).
        let interrupt_threads = if seed % 2 == 0 { 1 } else { 2 };
        let run = op_time_sweep_supervised_with_threads(
            pts.clone(),
            counts.clone(),
            grids::US_AVERAGE,
            &Supervisor::tripping_after(trip),
            interrupt_threads,
        )
        .expect("supervised sweep accepts valid inputs");
        let resumed = match run {
            SupervisedSweep::Complete(sweep) => {
                assert_eq!(
                    trip, rows,
                    "seed {seed}: completed despite trip {trip} < {rows}"
                );
                sweep
            }
            SupervisedSweep::Partial(partial) => {
                assert_eq!(partial.reason, StopReason::Cancelled, "seed {seed}");
                if interrupt_threads == 1 {
                    assert_eq!(
                        partial.checkpoint.completed_rows() as u64,
                        trip,
                        "seed {seed}: sequential trip point should be exact"
                    );
                }
                let text = partial.checkpoint.to_text();
                let restored = SweepCheckpoint::from_text(&text).expect("checkpoint round-trips");
                assert_eq!(
                    restored, partial.checkpoint,
                    "seed {seed}: lossy checkpoint"
                );
                let fresh = Supervisor::unbounded();
                match seed % 3 {
                    0 => restored.resume_with_threads(&fresh, 1),
                    1 => restored.resume_with_threads(&fresh, 2),
                    _ => restored.resume(&fresh),
                }
                .expect("resume accepts a valid checkpoint")
                .complete()
                .expect("a fresh unbounded supervisor completes the sweep")
            }
        };
        assert_eq!(
            resumed, baseline,
            "seed {seed}: resume diverged from baseline"
        );
    }
}

/// Deadline faults: a zero-budget deadline stops the sweep before any row,
/// the checkpoint records the deadline reason, and resume still completes
/// to the baseline bits.
#[test]
fn zero_deadline_interrupts_sweep_and_checkpoint_resumes() {
    let pts = synthetic_points();
    let counts = log_sweep(3, 9, 2);
    let baseline = OpTimeSweep::new(pts.clone(), counts.clone(), grids::US_AVERAGE)
        .expect("baseline sweep builds");
    for threads in [1, 2, 4] {
        let partial = op_time_sweep_supervised_with_threads(
            pts.clone(),
            counts.clone(),
            grids::US_AVERAGE,
            &Supervisor::with_deadline(Duration::ZERO),
            threads,
        )
        .expect("supervised sweep accepts valid inputs")
        .partial()
        .expect("a zero deadline must interrupt the sweep");
        assert_eq!(
            partial.reason,
            StopReason::DeadlineExceeded,
            "threads {threads}"
        );
        assert_eq!(partial.checkpoint.completed_rows(), 0, "threads {threads}");
        let text = partial.checkpoint.to_text();
        assert!(
            text.contains("deadline-exceeded"),
            "checkpoint should serialize the deadline reason"
        );
        let resumed = SweepCheckpoint::from_text(&text)
            .expect("checkpoint round-trips")
            .resume_with_threads(&Supervisor::unbounded(), threads)
            .expect("resume accepts a valid checkpoint")
            .complete()
            .expect("resume completes");
        assert_eq!(resumed, baseline, "threads {threads}");
    }
}

/// Space evaluation under combined faults: one seeded-poisoned
/// configuration in the space *and* a seeded mid-run interruption. After
/// resume, the points and the quarantine list (order included) must match
/// the uninterrupted resilient evaluation exactly.
#[test]
fn interrupted_eval_with_poisoned_configs_resumes_and_quarantines_in_order() {
    let task = Task::ai_5_kernels();
    let embodied = EmbodiedModel::default();
    for seed in 0..40u64 {
        let plan = FaultPlan::new(seed);
        let mut configs: Vec<AcceleratorConfig> = design_space().into_iter().take(24).collect();
        let poison_at = (seed as usize).wrapping_mul(7) % configs.len();
        configs[poison_at] = AcceleratorConfig::with_tuning(
            "poisoned",
            16,
            cordoba_carbon::prelude::Bytes::from_mebibytes(8.0),
            cordoba_accel::config::MemoryIntegration::OnDie,
            plan.poison_tuning(&TechTuning::n7()),
        )
        .expect("poisoned tuning still constructs");
        let baseline = evaluate_space_resilient(&configs, &task, &embodied);
        let trip = plan.trip_point(configs.len() as u64);
        let sup = Supervisor::tripping_after(trip);
        let mut eval = evaluate_space_supervised_with_threads(&configs, &task, &embodied, &sup, 1);
        if trip < configs.len() as u64 {
            assert_eq!(eval.stop(), Some(StopReason::Cancelled), "seed {seed}");
            assert_eq!(eval.attempted() as u64, trip, "seed {seed}");
        }
        let resume_threads = 1 + (seed as usize % 3);
        eval.resume_with_threads(
            &configs,
            &task,
            &embodied,
            &Supervisor::unbounded(),
            resume_threads,
        )
        .expect("resume with the original configs succeeds");
        assert!(eval.is_complete(), "seed {seed}");
        let resumed = eval.to_resilient().expect("complete eval converts");
        assert_eq!(
            resumed.points, baseline.points,
            "seed {seed}: points diverged"
        );
        assert_eq!(
            resumed
                .failures
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>(),
            baseline
                .failures
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>(),
            "seed {seed}: quarantine order diverged"
        );
    }
}

/// Panic isolation: work units that panic at seeded positions are
/// quarantined as `Outcome::Panicked` at exactly those input indices, and
/// the quarantine set is identical at 1, 2, and auto threads.
#[test]
fn seeded_panic_faults_are_quarantined_in_input_order_at_any_thread_count() {
    install_quiet_hook();
    let items: Vec<u64> = (0..120).collect();
    for seed in 0..200u64 {
        let plan = FaultPlan::new(seed);
        let modulus = 5 + plan.trip_point(20); // panic stride in [5, 25]
        let phase = seed % modulus;
        let classify = |threads: usize| -> Vec<Option<u64>> {
            let sup = Supervisor::unbounded();
            let run = par_map_supervised_with(&items, threads, &sup, |_, &x| {
                assert!(x % modulus != phase, "{QUIET} poisoned item {x}");
                x.wrapping_mul(31) ^ seed
            });
            assert!(run.is_complete(), "seed {seed}: no unit skipped");
            run.outcomes
                .into_iter()
                .enumerate()
                .map(|(i, outcome)| match outcome {
                    Outcome::Done(v) => Some(v),
                    Outcome::Panicked(msg) => {
                        assert!(
                            msg.contains(&format!("poisoned item {i}")),
                            "seed {seed}: panic message lost its origin"
                        );
                        None
                    }
                    Outcome::Skipped => panic!("seed {seed}: unexpected skip at {i}"),
                })
                .collect()
        };
        let sequential = classify(1);
        for (i, slot) in sequential.iter().enumerate() {
            let should_panic = (i as u64) % modulus == phase;
            assert_eq!(
                slot.is_none(),
                should_panic,
                "seed {seed}: quarantine set wrong at index {i}"
            );
        }
        assert_eq!(
            sequential,
            classify(2),
            "seed {seed}: 2-thread run diverged"
        );
        assert_eq!(
            sequential,
            classify(cordoba_par::effective_threads()),
            "seed {seed}: auto-thread run diverged"
        );
    }
}
