//! Overhead guard: the counter and histogram update paths must not
//! allocate after one-time registry construction, whether metrics are
//! enabled or disabled. A counting global allocator makes any allocation
//! on the hot path a hard test failure.
//!
//! This file deliberately holds a single `#[test]`: the allocation counter
//! is process-global, so a concurrently running test would make the
//! before/after comparison meaningless.

use cordoba_obs::{Counter, Gauge, Histogram, LabeledCounter};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations observed process-wide since startup.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// `System` wrapped with an allocation counter.
struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counter update is lock-free and
// allocation-free, so there is no reentrancy.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

static COUNTER: Counter = Counter::new("test/no_alloc/counter");
static HISTOGRAM: Histogram = Histogram::new("test/no_alloc/histogram");
static LABELED: LabeledCounter =
    LabeledCounter::new("test/no_alloc/labeled", "tier", &["hot", "cold", "other"]);
static GAUGE: Gauge = Gauge::new("test/no_alloc/gauge");

/// Runs `work` and returns how many allocations it performed.
fn allocations_during(work: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    work();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn metric_updates_do_not_allocate_after_registration() {
    // Disabled metrics: the guard load must not allocate either.
    cordoba_obs::set_metrics_enabled(false);
    let disabled = allocations_during(|| {
        for i in 0..10_000u64 {
            COUNTER.add(i);
            HISTOGRAM.record(i);
            LABELED.incr((i % 5) as usize);
            GAUGE.set(i as f64);
        }
    });
    assert_eq!(disabled, 0, "disabled metric updates allocated");

    // First enabled touch registers into the global registry — the only
    // moment the metrics layer is allowed to allocate.
    cordoba_obs::set_metrics_enabled(true);
    COUNTER.incr();
    HISTOGRAM.record(1);
    LABELED.incr(0);
    GAUGE.set(0.0);

    let enabled = allocations_during(|| {
        for i in 0..100_000u64 {
            COUNTER.add(i);
            HISTOGRAM.record(i);
            // Out-of-range cells clamp to the trailing catch-all; the
            // clamp path must be allocation-free too.
            LABELED.incr((i % 5) as usize);
            GAUGE.set(i as f64);
        }
    });
    assert_eq!(enabled, 0, "registered metric updates allocated");
    assert_eq!(COUNTER.value(), 1 + (0..100_000u64).sum::<u64>());
    assert_eq!(HISTOGRAM.count(), 100_001);
    // 100_000 updates: cells 0/1 get 20_000 each (plus the registration
    // touch on cell 0), the catch-all absorbs the clamped 2/3/4 residues.
    assert_eq!(LABELED.cell_value(0), 20_001);
    assert_eq!(LABELED.cell_value(1), 20_000);
    assert_eq!(LABELED.cell_value(2), 60_000);
    assert_eq!(GAUGE.value(), 99_999.0);
}
