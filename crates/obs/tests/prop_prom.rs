//! Property suite for the Prometheus text exposition: seeded pseudo-random
//! registry states must render to documents that pass the in-crate
//! validator and parse back to the snapshot's values — including hostile
//! metric names (mangling collisions), label values needing escapes, and
//! zero-count histograms.
//!
//! The generator is a hand-rolled splitmix64 so the obs crate stays
//! dependency-free even in its tests.

use cordoba_obs::metrics::HISTOGRAM_BUCKETS;
use cordoba_obs::{
    parse_prometheus_text, render_snapshot, validate_prometheus_text, CounterState, GaugeState,
    HistogramState, PromDoc, RegistrySnapshot,
};

/// Deterministic splitmix64 stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// A metric name drawn from an alphabet that forces mangling often:
/// slashes, dots, dashes, leading digits, and occasional collisions by
/// construction (`a/b` vs `a.b` mangle identically).
fn random_name(rng: &mut Rng) -> String {
    const STEMS: [&str; 6] = ["core/sweep", "core.sweep", "9lives", "events-x", "a", "Ω/б"];
    const TAILS: [&str; 4] = ["", "/total", ".total", "_total"];
    format!(
        "{}{}",
        STEMS[rng.below(STEMS.len())],
        TAILS[rng.below(TAILS.len())]
    )
}

/// A label value exercising every escape class the exposition defines.
fn random_label_value(rng: &mut Rng) -> String {
    const VALUES: [&str; 6] = [
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "new\nline",
        "",
        "mixed \\ \"q\"\nend",
    ];
    VALUES[rng.below(VALUES.len())].to_owned()
}

fn random_counters(rng: &mut Rng) -> Vec<CounterState> {
    (0..rng.below(6))
        .map(|_| {
            let labels = if rng.chance(50) {
                vec![("tier".to_owned(), random_label_value(rng))]
            } else {
                Vec::new()
            };
            CounterState {
                name: random_name(rng),
                labels,
                value: rng.next() % 1_000_000,
            }
        })
        .collect()
}

/// Keeps the first state per source name: the live registry is keyed by
/// name, so duplicate gauge/histogram states cannot occur in practice and
/// the renderer is not required to merge them.
fn dedup_by_name<T>(items: Vec<T>, name: impl Fn(&T) -> &str) -> Vec<T> {
    let mut seen = std::collections::BTreeSet::new();
    items
        .into_iter()
        .filter(|item| seen.insert(name(item).to_owned()))
        .collect()
}

fn random_gauges(rng: &mut Rng) -> Vec<GaugeState> {
    let raw = (0..rng.below(4))
        .map(|_| GaugeState {
            name: random_name(rng),
            value: (rng.next() % 2_000_000) as f64 / 128.0 - 7_000.0,
        })
        .collect();
    dedup_by_name(raw, |g| &g.name)
}

/// A histogram state consistent the way the live registry guarantees:
/// `count` is exactly the sum of the bucket counts.
fn random_histogram(rng: &mut Rng) -> HistogramState {
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    if !rng.chance(20) {
        for _ in 0..1 + rng.below(8) {
            buckets[rng.below(HISTOGRAM_BUCKETS)] += rng.next() % 1_000;
        }
    }
    let count: u64 = buckets.iter().sum();
    HistogramState {
        name: random_name(rng),
        count,
        sum: rng.next() % 10_000_000,
        buckets,
    }
}

fn random_snapshot(rng: &mut Rng) -> RegistrySnapshot {
    RegistrySnapshot {
        counters: random_counters(rng),
        gauges: random_gauges(rng),
        histograms: dedup_by_name(
            (0..rng.below(4)).map(|_| random_histogram(rng)).collect(),
            |h| &h.name,
        ),
    }
}

/// Sum of every sample value whose (possibly suffixed) name ends with
/// `suffix` — or of plain samples of the given parsed type when
/// `suffix` is empty.
fn sum_of(doc: &PromDoc, kind: &str, suffix: &str) -> f64 {
    let families: Vec<&str> = doc
        .types
        .iter()
        .filter(|(_, k)| k == kind)
        .map(|(name, _)| name.as_str())
        .collect();
    doc.samples
        .iter()
        .filter(|s| {
            families.iter().any(|f| {
                if suffix.is_empty() {
                    s.name == *f
                } else {
                    s.name.strip_suffix(suffix) == Some(f)
                }
            })
        })
        .map(|s| s.value)
        .sum()
}

#[test]
fn seeded_snapshots_render_validate_and_reconcile() {
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed);
        let snapshot = random_snapshot(&mut rng);
        let text = render_snapshot(&snapshot);

        // Rendering is deterministic.
        assert_eq!(text, render_snapshot(&snapshot), "seed {seed}");

        // The in-crate validator accepts every rendering.
        let check = validate_prometheus_text(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: invalid rendering: {e}\n{text}"));

        let doc = parse_prometheus_text(&text).unwrap();

        // Merging and disambiguation never lose or invent counts: the
        // counter samples sum to the snapshot's total.
        let counter_total: u64 = snapshot.counters.iter().map(|c| c.value).sum();
        let rendered_total = sum_of(&doc, "counter", "");
        assert!(
            (rendered_total - counter_total as f64).abs() < 0.5,
            "seed {seed}: counter mass changed: {rendered_total} vs {counter_total}"
        );

        // Gauges never merge — one sample each survives.
        let gauge_samples = doc
            .samples
            .iter()
            .filter(|s| doc.types.iter().any(|(n, k)| k == "gauge" && *n == s.name))
            .count();
        assert_eq!(gauge_samples, snapshot.gauges.len(), "seed {seed}");

        // Histogram observation mass is conserved in `_count` and `_sum`.
        let hist_count: u64 = snapshot.histograms.iter().map(|h| h.count).sum();
        let hist_sum: u64 = snapshot.histograms.iter().map(|h| h.sum).sum();
        assert!(
            (sum_of(&doc, "histogram", "_count") - hist_count as f64).abs() < 0.5,
            "seed {seed}: histogram count mass changed"
        );
        assert!(
            (sum_of(&doc, "histogram", "_sum") - hist_sum as f64).abs() < 0.5,
            "seed {seed}: histogram sum mass changed"
        );
        assert_eq!(
            check.histograms,
            {
                let names: std::collections::BTreeSet<String> = snapshot
                    .histograms
                    .iter()
                    .map(|h| cordoba_obs::prom::mangle_metric_name(&h.name))
                    .collect();
                names.len()
            },
            "seed {seed}: histogram family count"
        );
    }
}

#[test]
fn collision_free_snapshots_round_trip_exact_values() {
    for seed in 0..100u64 {
        let mut rng = Rng::new(0xC0FFEE ^ seed);
        // Legal, unique names: parsing must recover each value exactly.
        let counters: Vec<CounterState> = (0..1 + rng.below(5))
            .map(|i| CounterState {
                name: format!("unique_counter_{i}"),
                labels: vec![("tier".to_owned(), random_label_value(&mut rng))],
                value: rng.next(),
            })
            .collect();
        let histogram = random_histogram(&mut rng);
        let snapshot = RegistrySnapshot {
            counters: counters.clone(),
            gauges: vec![GaugeState {
                name: "unique_gauge".to_owned(),
                value: 1.5,
            }],
            histograms: vec![HistogramState {
                name: "unique_histogram".to_owned(),
                ..histogram
            }],
        };
        let text = render_snapshot(&snapshot);
        validate_prometheus_text(&text).unwrap();
        let doc = parse_prometheus_text(&text).unwrap();

        for counter in &counters {
            let sample = doc
                .samples
                .iter()
                .find(|s| s.name == counter.name && s.labels == counter.labels)
                .unwrap_or_else(|| panic!("seed {seed}: lost {}", counter.name));
            // u64 -> f64 is lossy above 2^53; compare through the same cast.
            // cordoba-lint: allow(lossy-cast) — deliberate, mirrors the parse
            assert_eq!(sample.value, counter.value as f64, "seed {seed}");
        }

        // Per-bucket counts reconstruct from the cumulative `le` series.
        let hist = &snapshot.histograms[0];
        let mut bucket_samples: Vec<&cordoba_obs::PromSample> = doc
            .samples
            .iter()
            .filter(|s| s.name == "unique_histogram_bucket")
            .collect();
        bucket_samples.pop(); // drop +Inf (always last in render order)
        let mut previous = 0.0;
        let mut reconstructed = vec![0u64; HISTOGRAM_BUCKETS];
        for sample in bucket_samples {
            let le: u64 = sample.labels[0].1.parse().unwrap();
            let index = match le {
                0 => 0,
                u64::MAX => HISTOGRAM_BUCKETS - 1,
                n => (64 - (n + 1).leading_zeros() as usize) - 1,
            };
            // cordoba-lint: allow(lossy-cast) — counts stay far below 2^53 here
            reconstructed[index] = (sample.value - previous) as u64;
            previous = sample.value;
        }
        let nonzero = |b: &[u64]| -> Vec<(usize, u64)> {
            b.iter()
                .copied()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .collect()
        };
        assert_eq!(
            nonzero(&reconstructed),
            nonzero(&hist.buckets),
            "seed {seed}: bucket counts did not round-trip"
        );
    }
}

#[test]
fn zero_count_histograms_expose_only_the_inf_bucket() {
    let snapshot = RegistrySnapshot {
        histograms: vec![HistogramState {
            name: "empty_histogram".to_owned(),
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }],
        ..RegistrySnapshot::default()
    };
    let text = render_snapshot(&snapshot);
    validate_prometheus_text(&text).unwrap();
    let doc = parse_prometheus_text(&text).unwrap();
    let buckets: Vec<_> = doc
        .samples
        .iter()
        .filter(|s| s.name == "empty_histogram_bucket")
        .collect();
    assert_eq!(buckets.len(), 1, "{text}");
    assert_eq!(
        buckets[0].labels,
        vec![("le".to_owned(), "+Inf".to_owned())]
    );
    assert_eq!(buckets[0].value, 0.0);
}

#[test]
fn hostile_label_values_round_trip_through_escaping() {
    for seed in 0..50u64 {
        let mut rng = Rng::new(0xE5C ^ seed);
        let value = random_label_value(&mut rng);
        let snapshot = RegistrySnapshot {
            counters: vec![CounterState {
                name: "escaped".to_owned(),
                labels: vec![("v".to_owned(), value.clone())],
                value: 7,
            }],
            ..RegistrySnapshot::default()
        };
        let text = render_snapshot(&snapshot);
        validate_prometheus_text(&text).unwrap();
        let doc = parse_prometheus_text(&text).unwrap();
        assert_eq!(doc.samples[0].labels[0].1, value, "seed {seed}: {text:?}");
    }
}

#[test]
fn mangling_collisions_merge_with_disambiguating_labels() {
    let snapshot = RegistrySnapshot {
        counters: vec![
            CounterState {
                name: "a/b".to_owned(),
                labels: Vec::new(),
                value: 3,
            },
            CounterState {
                name: "a.b".to_owned(),
                labels: Vec::new(),
                value: 4,
            },
        ],
        ..RegistrySnapshot::default()
    };
    let text = render_snapshot(&snapshot);
    let check = validate_prometheus_text(&text).unwrap();
    assert_eq!(check.counters, 1, "one merged family:\n{text}");
    let doc = parse_prometheus_text(&text).unwrap();
    let mut by_source: Vec<(String, f64)> = doc
        .samples
        .iter()
        .map(|s| (s.labels[0].1.clone(), s.value))
        .collect();
    by_source.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(
        by_source,
        vec![("a.b".to_owned(), 4.0), ("a/b".to_owned(), 3.0)]
    );
}
