//! Zero-dependency observability for CORDOBA's sweeps, solvers, and
//! resilience machinery.
//!
//! The framework's hot paths — design-space characterization, β-transition
//! solving, Monte Carlo sampling, fallback carbon-intensity chains — are
//! instrumented with three layers, all of which cost a few relaxed atomic
//! loads when disabled so instrumented code stays bit-identical to (and
//! within noise of) uninstrumented code:
//!
//! * **Spans** ([`span`], [`span_with`], [`span_timed`]): RAII timed scopes
//!   collected into a thread-aware, order-stable buffer and exported as
//!   Chrome trace-event JSON ([`export_chrome_trace`]) loadable in Perfetto
//!   or `chrome://tracing`.
//! * **Metrics** ([`Counter`], [`Histogram`]): named atomic counters and
//!   fixed-bucket (log₂) histograms that self-register into a global
//!   registry on first touch and dump as JSON lines
//!   ([`dump_json_lines`]).
//! * **Structured events** ([`Event`], [`record`]): typed records for the
//!   interesting state transitions — a `FallbackCi` tier switch, a sanitize
//!   rejection, a quarantined evaluation, a solver that ran out of budget, a
//!   watchdog truncation, an embodied-carbon cache hit or miss.
//!
//! Both layers are **opt-in at runtime**: nothing is recorded until
//! [`set_metrics_enabled`] / [`set_tracing_enabled`] is called (the CLI
//! wires these to `--metrics` and `--trace-out`). Instrumentation never
//! changes results — observation is a side channel, and the sweep engine's
//! determinism contract (bit-identical output at every thread count) holds
//! with every layer enabled.
//!
//! # Examples
//!
//! ```
//! use cordoba_obs::{Counter, Event};
//!
//! static SWEEPS: Counter = Counter::new("example/sweeps");
//!
//! cordoba_obs::set_metrics_enabled(true);
//! cordoba_obs::set_tracing_enabled(true);
//! {
//!     let _span = cordoba_obs::span("example/work");
//!     SWEEPS.incr();
//!     cordoba_obs::record(&Event::CacheMiss);
//! }
//! assert_eq!(SWEEPS.value(), 1);
//! let trace = cordoba_obs::drain_chrome_trace();
//! assert!(cordoba_obs::validate_chrome_trace(&trace).is_ok());
//! ```

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod prom;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use chrome::{drain_chrome_trace, export_chrome_trace, validate_chrome_trace, TraceCheck};
pub use event::{record, Event};
pub use metrics::{
    counter_snapshot, dump_json_lines, gauge_snapshot, labeled_counter_snapshot, Counter, Gauge,
    Histogram, LabeledCounter, MAX_LABEL_CELLS,
};
pub use profile::{profile_chrome_trace, profile_report, ProfileEntry, ProfileReport};
pub use prom::{
    parse_prometheus_text, registry_snapshot, render_prometheus, render_snapshot,
    validate_prometheus_text, CounterState, GaugeState, HistogramState, PromCheck, PromDoc,
    PromSample, RegistrySnapshot,
};
pub use span::{clear_trace, span, span_timed, span_with, SpanGuard};

/// Global metrics switch; off by default so instrumented code costs one
/// relaxed load per counter touch.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Global span/event-collection switch; off by default.
static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the metrics registry on or off. Counter and histogram updates are
/// dropped while off; values accumulated earlier are retained.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when counters and histograms are recording.
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns span and structured-event collection on or off. Enabling also pins
/// the trace epoch (the `ts = 0` instant) on first use.
pub fn set_tracing_enabled(on: bool) {
    if on {
        span::init_epoch();
    }
    TRACING_ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when spans and structured events are being collected.
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// Serializes tests that toggle the global switches, which would otherwise
/// race across the parallel test harness.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
