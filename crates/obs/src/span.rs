//! RAII timed spans collected into a thread-aware, order-stable trace
//! buffer.
//!
//! A span measures the scope it is bound to: [`span`] stamps the current
//! instant, and dropping the returned [`SpanGuard`] records a complete
//! event (name, thread, start offset from the trace epoch, duration) into
//! the global buffer. Threads are identified by small stable integers
//! assigned on first use, and every span carries a global creation sequence
//! number so export can order parents before children even when timestamps
//! tie at clock resolution — that pair makes the exported tree
//! *order-stable*: nesting is reconstructible from `(tid, ts, seq)` alone.
//!
//! While tracing is disabled ([`crate::tracing_enabled`]) span creation is
//! a single relaxed load and no guard state is allocated.

use crate::metrics::Histogram;
use crate::tracing_enabled;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Cap on buffered trace records; excess records are counted in
/// [`dropped_records`] instead of growing the buffer without bound.
pub const MAX_TRACE_RECORDS: usize = 1 << 20;

/// Key/value arguments attached to a trace record (at most two, fixed-size
/// so recording never allocates).
pub(crate) type RecordArgs = [Option<(&'static str, u64)>; 2];

/// One buffered trace record.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Record {
    /// A completed span.
    Span {
        /// Span name.
        name: &'static str,
        /// Optional argument shown in the trace viewer.
        args: RecordArgs,
        /// Stable small thread id.
        tid: u32,
        /// Global creation sequence number (orders parents before children).
        seq: u64,
        /// Start offset from the trace epoch, nanoseconds.
        start_ns: u64,
        /// Duration, nanoseconds.
        dur_ns: u64,
    },
    /// A structured instant event (exported as a zero-duration span).
    Instant {
        /// Event name.
        name: &'static str,
        /// Event payload.
        args: RecordArgs,
        /// Stable small thread id.
        tid: u32,
        /// Global sequence number.
        seq: u64,
        /// Offset from the trace epoch, nanoseconds.
        ts_ns: u64,
    },
}

/// The global trace buffer.
static TRACE_BUF: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Records dropped after the buffer reached [`MAX_TRACE_RECORDS`].
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Global span/event creation sequence.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Next stable thread id; 0 is reserved for "unassigned" (and for the
/// synthetic counter track in the Chrome export).
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// The instant all trace timestamps are measured from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// This thread's stable id; 0 until assigned.
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// Recovers the guard from a poisoned buffer lock; the buffer holds plain
/// `Copy` records, so a panic mid-push cannot leave it inconsistent.
fn lock_buf() -> MutexGuard<'static, Vec<Record>> {
    match TRACE_BUF.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Pins the trace epoch (idempotent).
pub(crate) fn init_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

/// The trace epoch, pinned on first use.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds in `d`, saturating at `u64::MAX` (~584 years).
fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds from the trace epoch to `at` (zero if `at` precedes it).
pub(crate) fn ns_since_epoch(at: Instant) -> u64 {
    duration_ns(at.duration_since(epoch()))
}

/// The next global creation sequence number, shared by spans and instants
/// so export ordering is total within a thread.
pub(crate) fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// This thread's stable small id, assigned on first use.
pub(crate) fn current_tid() -> u32 {
    TID.with(|cell| {
        let tid = cell.get();
        if tid != 0 {
            return tid;
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        cell.set(tid);
        tid
    })
}

/// Appends `record` to the trace buffer, honoring [`MAX_TRACE_RECORDS`].
pub(crate) fn push_record(record: Record) {
    let mut buf = lock_buf();
    if buf.len() < MAX_TRACE_RECORDS {
        buf.push(record);
    } else {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Takes every buffered record, leaving the buffer empty.
pub(crate) fn take_records() -> Vec<Record> {
    std::mem::take(&mut *lock_buf())
}

/// Clones every buffered record without draining.
pub(crate) fn snapshot_records() -> Vec<Record> {
    lock_buf().clone()
}

/// Discards every buffered record and resets the dropped-record count.
pub fn clear_trace() {
    lock_buf().clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Number of currently buffered trace records.
#[must_use]
pub fn buffered_records() -> usize {
    lock_buf().len()
}

/// Records dropped since the last [`clear_trace`] because the buffer was
/// full.
#[must_use]
pub fn dropped_records() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// A live, not-yet-recorded span.
#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    args: RecordArgs,
    histogram: Option<&'static Histogram>,
    begin: Instant,
    seq: u64,
}

/// RAII guard returned by [`span`]; records the timed scope when dropped.
///
/// Bind it to a named local (`let _span = ...`) — binding to `_` drops it
/// immediately and records an empty span.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a named local"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_ns = duration_ns(live.begin.elapsed());
        if let Some(histogram) = live.histogram {
            histogram.record(dur_ns);
        }
        if tracing_enabled() {
            // `duration_since` saturates to zero when the span began before
            // the epoch was pinned.
            let start_ns = duration_ns(live.begin.duration_since(epoch()));
            push_record(Record::Span {
                name: live.name,
                args: live.args,
                tid: current_tid(),
                seq: live.seq,
                start_ns,
                dur_ns,
            });
        }
    }
}

/// Opens a span if any consumer (trace buffer, duration histogram) is
/// currently enabled.
fn begin(name: &'static str, args: RecordArgs, histogram: Option<&'static Histogram>) -> SpanGuard {
    let want_trace = tracing_enabled();
    let want_histogram = histogram.is_some() && crate::metrics_enabled();
    if !want_trace && !want_histogram {
        return SpanGuard { live: None };
    }
    SpanGuard {
        live: Some(LiveSpan {
            name,
            args,
            histogram,
            begin: Instant::now(),
            seq: next_seq(),
        }),
    }
}

/// Starts a timed span named `name`; the returned guard records the scope's
/// duration when dropped. Near-free while tracing is disabled.
///
/// ```
/// cordoba_obs::set_tracing_enabled(true);
/// {
///     let _span = cordoba_obs::span("docs/example");
/// }
/// assert!(cordoba_obs::span::buffered_records() > 0);
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    begin(name, [None, None], None)
}

/// [`span`] with one named integer argument shown in the trace viewer
/// (e.g. the chunk length of a parallel worker).
pub fn span_with(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    begin(name, [Some((key, value)), None], None)
}

/// [`span`] that additionally records the scope's duration (nanoseconds)
/// into `histogram` when metrics are enabled — so hot entry points get a
/// latency distribution even when no trace is being collected.
pub fn span_timed(name: &'static str, histogram: &'static Histogram) -> SpanGuard {
    begin(name, [None, None], Some(histogram))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_tids() {
        let _guard = crate::test_lock();
        crate::set_tracing_enabled(true);
        clear_trace();
        {
            let _outer = span("test/outer");
            let _inner = span_with("test/inner", "items", 3);
        }
        let records = snapshot_records();
        let mut spans: Vec<(&str, u64)> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span { name, seq, .. } => Some((*name, *seq)),
                Record::Instant { .. } => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        // Creation order: outer first, even though inner dropped first.
        spans.sort_by_key(|(_, seq)| *seq);
        assert_eq!(spans[0].0, "test/outer");
        assert_eq!(spans[1].0, "test/inner");
        crate::set_tracing_enabled(false);
        clear_trace();
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = crate::test_lock();
        crate::set_tracing_enabled(false);
        clear_trace();
        {
            let _span = span("test/disabled");
        }
        assert_eq!(buffered_records(), 0);
    }

    #[test]
    fn tids_are_stable_per_thread_and_distinct() {
        let here = current_tid();
        assert_eq!(here, current_tid());
        let there = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, 0);
        assert_ne!(there, 0);
        assert_ne!(here, there);
    }
}
