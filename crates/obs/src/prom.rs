//! Prometheus text exposition (format v0.0.4) for the metrics registry.
//!
//! [`render_prometheus`] renders the live registry — counters, labeled
//! counters, gauges, and the 65-bucket power-of-two histograms — in the
//! Prometheus text format a `/metrics` endpoint serves: `# TYPE` headers,
//! cumulative `le`-bucketed histograms with `_sum`/`_count`, slash names
//! mangled to legal metric names, and label values escaped. Because the
//! workspace is dependency-free by policy, the crate also ships its own
//! parser/validator ([`validate_prometheus_text`], mirroring
//! [`crate::validate_chrome_trace`]) so round-trips are testable offline.
//!
//! ## Name mangling and collisions
//!
//! Registry names are `/`-separated paths (`carbon/fallback/queries`);
//! Prometheus names admit only `[a-zA-Z0-9_:]`, so every illegal character
//! becomes `_`. Mangling can collide (`a/b` and `a_b` both become `a_b`);
//! colliding same-kind sources are merged into one family whose samples are
//! disambiguated by a `name="<original>"` label, which keeps the exposition
//! valid and lossless. Cross-kind collisions get a kind suffix
//! (`_gauge` / `_histogram`) on the later-rendered family.
//!
//! ## Histogram mapping
//!
//! Registry bucket `0` holds exact zeros and bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i)`, so the *inclusive* Prometheus bound of bucket `i` is
//! `2^i - 1` (and `0` for the zero bucket). Buckets are rendered
//! cumulatively up to the last non-empty one, followed by the mandatory
//! `+Inf` bucket equal to `_count`.

use crate::metrics::{
    counter_snapshot, gauge_snapshot, histogram_snapshot, labeled_counter_snapshot,
    HISTOGRAM_BUCKETS,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One counter sample in a [`RegistrySnapshot`]: registry name, static
/// labels (empty for plain counters), and the cell value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterState {
    /// Registry name (pre-mangling, e.g. `carbon/fallback/queries`).
    pub name: String,
    /// Label key/value pairs (one pair for [`crate::LabeledCounter`] cells).
    pub labels: Vec<(String, String)>,
    /// The counter value.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeState {
    /// Registry name.
    pub name: String,
    /// Last-set value.
    pub value: f64,
}

/// One histogram in a [`RegistrySnapshot`], with raw (non-cumulative)
/// power-of-two bucket counts as produced by
/// [`crate::metrics::Histogram::bucket_counts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramState {
    /// Registry name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Per-bucket counts, `HISTOGRAM_BUCKETS` entries (missing trailing
    /// entries are treated as zero).
    pub buckets: Vec<u64>,
}

/// A point-in-time copy of the registry in renderer-independent form; the
/// unit of [`render_snapshot`], so tests can render synthetic states
/// without touching the global registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter samples (plain and labeled).
    pub counters: Vec<CounterState>,
    /// Gauges.
    pub gauges: Vec<GaugeState>,
    /// Histograms.
    pub histograms: Vec<HistogramState>,
}

/// Captures the live registry as a [`RegistrySnapshot`].
#[must_use]
pub fn registry_snapshot() -> RegistrySnapshot {
    let mut counters: Vec<CounterState> = counter_snapshot()
        .into_iter()
        .map(|(name, value)| CounterState {
            name: name.to_owned(),
            labels: Vec::new(),
            value,
        })
        .collect();
    counters.extend(labeled_counter_snapshot().into_iter().map(
        |(name, label, label_value, value)| CounterState {
            name: name.to_owned(),
            labels: vec![(label.to_owned(), label_value.to_owned())],
            value,
        },
    ));
    RegistrySnapshot {
        counters,
        gauges: gauge_snapshot()
            .into_iter()
            .map(|(name, value)| GaugeState {
                name: name.to_owned(),
                value,
            })
            .collect(),
        histograms: histogram_snapshot()
            .into_iter()
            .map(|h| HistogramState {
                name: h.name().to_owned(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.bucket_counts().to_vec(),
            })
            .collect(),
    }
}

/// Renders the live registry in Prometheus text exposition format v0.0.4.
#[must_use]
pub fn render_prometheus() -> String {
    render_snapshot(&registry_snapshot())
}

/// A metric name with every character outside `[a-zA-Z0-9_:]` replaced by
/// `_`, prefixed with `_` when it would otherwise start with a digit.
#[must_use]
pub fn mangle_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// A float in exposition syntax: finite values via the shortest
/// round-tripping decimal, plus `+Inf`/`-Inf`/`NaN`.
fn prom_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_owned()
    } else if value == f64::INFINITY {
        "+Inf".to_owned()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{value}")
    }
}

/// Renders a label set as `{k="v",...}`, or nothing when empty.
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", mangle_metric_name(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// The inclusive Prometheus `le` bound of registry bucket `index`: the
/// zero bucket admits only `0`, bucket `i ≥ 1` covers `[2^(i-1), 2^i)` so
/// its largest member is `2^i - 1`.
fn bucket_upper_inclusive(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i < HISTOGRAM_BUCKETS - 1 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// One family ready to emit: mangled name, exposition type, and fully
/// rendered sample lines (without the name prefix).
struct Family {
    name: String,
    kind: &'static str,
    /// `(label block, value text)` for counter/gauge; histograms render
    /// their own suffixed sample names in `raw_lines` instead.
    samples: Vec<(String, String)>,
    /// Fully formed sample lines (histograms only).
    raw_lines: Vec<String>,
}

/// Renders a snapshot in Prometheus text exposition format v0.0.4. Output
/// is deterministic: families sorted by mangled name, samples by original
/// name then labels.
#[must_use]
pub fn render_snapshot(snapshot: &RegistrySnapshot) -> String {
    let mut families: Vec<Family> = Vec::new();
    let mut taken: BTreeSet<String> = BTreeSet::new();

    // Counters first: they keep their mangled names; same-name collisions
    // merge into one family with `name="<original>"` disambiguation.
    let mut counter_groups: BTreeMap<String, Vec<&CounterState>> = BTreeMap::new();
    for counter in &snapshot.counters {
        counter_groups
            .entry(mangle_metric_name(&counter.name))
            .or_default()
            .push(counter);
    }
    for (mangled, mut group) in counter_groups {
        group.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let distinct: BTreeSet<&str> = group.iter().map(|c| c.name.as_str()).collect();
        let disambiguate = distinct.len() > 1;
        // Exact duplicates (same source name and labels) sum into one
        // sample so the exposition never carries duplicate series.
        let mut merged: BTreeMap<(String, Vec<(String, String)>), u64> = BTreeMap::new();
        for counter in group {
            let mut labels = counter.labels.clone();
            if disambiguate {
                labels.push(("name".to_owned(), counter.name.clone()));
            }
            *merged.entry((counter.name.clone(), labels)).or_insert(0) += counter.value;
        }
        let samples = merged
            .into_iter()
            .map(|((_, labels), value)| (render_labels(&labels), format!("{value}")))
            .collect();
        taken.insert(mangled.clone());
        families.push(Family {
            name: mangled,
            kind: "counter",
            samples,
            raw_lines: Vec::new(),
        });
    }

    // Gauges: same-kind collisions disambiguate like counters; a clash
    // with a counter family gets a `_gauge` suffix.
    let mut gauge_groups: BTreeMap<String, Vec<&GaugeState>> = BTreeMap::new();
    for gauge in &snapshot.gauges {
        gauge_groups
            .entry(mangle_metric_name(&gauge.name))
            .or_default()
            .push(gauge);
    }
    for (mangled, mut group) in gauge_groups {
        let mangled = free_name(mangled, "_gauge", &taken);
        group.sort_by(|a, b| a.name.cmp(&b.name));
        let disambiguate = group
            .iter()
            .map(|g| g.name.as_str())
            .collect::<BTreeSet<_>>()
            .len()
            > 1;
        let samples = group
            .iter()
            .map(|gauge| {
                let labels = if disambiguate {
                    vec![("name".to_owned(), gauge.name.clone())]
                } else {
                    Vec::new()
                };
                (render_labels(&labels), prom_f64(gauge.value))
            })
            .collect();
        taken.insert(mangled.clone());
        families.push(Family {
            name: mangled,
            kind: "gauge",
            samples,
            raw_lines: Vec::new(),
        });
    }

    // Histograms: same-kind collisions disambiguate with the `name` label
    // on every suffixed sample; cross-kind clashes take `_histogram`.
    let mut histogram_groups: BTreeMap<String, Vec<&HistogramState>> = BTreeMap::new();
    for histogram in &snapshot.histograms {
        histogram_groups
            .entry(mangle_metric_name(&histogram.name))
            .or_default()
            .push(histogram);
    }
    for (mangled, mut group) in histogram_groups {
        let mangled = free_name(mangled, "_histogram", &taken);
        group.sort_by(|a, b| a.name.cmp(&b.name));
        let disambiguate = group
            .iter()
            .map(|h| h.name.as_str())
            .collect::<BTreeSet<_>>()
            .len()
            > 1;
        let mut raw_lines = Vec::new();
        for histogram in group {
            let base_labels: Vec<(String, String)> = if disambiguate {
                vec![("name".to_owned(), histogram.name.clone())]
            } else {
                Vec::new()
            };
            let counts: Vec<u64> = (0..HISTOGRAM_BUCKETS)
                .map(|i| histogram.buckets.get(i).copied().unwrap_or(0))
                .collect();
            let last_nonzero = counts.iter().rposition(|&n| n > 0);
            let mut cumulative = 0u64;
            if let Some(last) = last_nonzero {
                for (i, &n) in counts.iter().enumerate().take(last + 1) {
                    cumulative += n;
                    let mut labels = base_labels.clone();
                    labels.push(("le".to_owned(), format!("{}", bucket_upper_inclusive(i))));
                    raw_lines.push(format!(
                        "{}_bucket{} {cumulative}",
                        mangled,
                        render_labels(&labels)
                    ));
                }
            }
            let mut inf_labels = base_labels.clone();
            inf_labels.push(("le".to_owned(), "+Inf".to_owned()));
            raw_lines.push(format!(
                "{}_bucket{} {}",
                mangled,
                render_labels(&inf_labels),
                histogram.count
            ));
            raw_lines.push(format!(
                "{}_sum{} {}",
                mangled,
                render_labels(&base_labels),
                histogram.sum
            ));
            raw_lines.push(format!(
                "{}_count{} {}",
                mangled,
                render_labels(&base_labels),
                histogram.count
            ));
        }
        taken.insert(mangled.clone());
        families.push(Family {
            name: mangled,
            kind: "histogram",
            samples: Vec::new(),
            raw_lines,
        });
    }

    families.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for family in &families {
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind);
        for (labels, value) in &family.samples {
            let _ = writeln!(out, "{}{} {}", family.name, labels, value);
        }
        for line in &family.raw_lines {
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// `candidate` if unused, otherwise `candidate + suffix` (with underscores
/// appended until free) — the cross-kind collision escape hatch.
fn free_name(candidate: String, suffix: &str, taken: &BTreeSet<String>) -> String {
    if !taken.contains(&candidate) {
        return candidate;
    }
    let mut renamed = format!("{candidate}{suffix}");
    while taken.contains(&renamed) {
        renamed.push('_');
    }
    renamed
}

// ---------------------------------------------------------------------------
// Parsing and validation
// ---------------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in document order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A syntactically parsed exposition document: `# TYPE` declarations and
/// samples, both in document order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromDoc {
    /// `(family name, type)` per `# TYPE` line.
    pub types: Vec<(String, String)>,
    /// Every sample line.
    pub samples: Vec<PromSample>,
}

/// Summary returned by [`validate_prometheus_text`], mirroring
/// [`crate::TraceCheck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromCheck {
    /// `# TYPE` declarations.
    pub families: usize,
    /// Families declared `counter`.
    pub counters: usize,
    /// Families declared `gauge`.
    pub gauges: usize,
    /// Families declared `histogram`.
    pub histograms: usize,
    /// Total sample lines.
    pub samples: usize,
}

/// `true` for a legal metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` for a legal label key (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn is_label_key(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses an exposition value: `+Inf`/`Inf`/`-Inf`/`NaN` or a decimal.
fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Parses the `{k="v",...}` label block starting after `{`; returns the
/// pairs and the byte offset just past the closing `}`.
fn parse_labels(rest: &str, lineno: usize) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = rest.as_bytes();
    let mut labels = Vec::new();
    let mut pos = 0usize;
    if bytes.get(pos) == Some(&b'}') {
        return Ok((labels, pos + 1));
    }
    loop {
        let key_start = pos;
        while bytes
            .get(pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            pos += 1;
        }
        let key = &rest[key_start..pos];
        if !is_label_key(key) {
            return Err(format!("line {lineno}: bad label key `{key}`"));
        }
        if bytes.get(pos) != Some(&b'=') {
            return Err(format!("line {lineno}: expected `=` after label key"));
        }
        pos += 1;
        if bytes.get(pos) != Some(&b'"') {
            return Err(format!("line {lineno}: expected `\"` to open label value"));
        }
        pos += 1;
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                None => return Err(format!("line {lineno}: unterminated label value")),
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("line {lineno}: unknown escape in label value")),
                    }
                    pos += 2;
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim; `rest` came from a
                    // `&str`, so boundaries are valid.
                    let tail = &rest[pos..];
                    let len = tail.chars().next().map_or(1, char::len_utf8);
                    value.push_str(&tail[..len]);
                    pos += len;
                }
            }
        }
        labels.push((key.to_owned(), value));
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok((labels, pos + 1)),
            _ => return Err(format!("line {lineno}: expected `,` or `}}` after label")),
        }
    }
}

/// Parses `text` as an exposition document (syntax only; semantic checks
/// live in [`validate_prometheus_text`]).
///
/// # Errors
///
/// Returns a message locating the first malformed line.
pub fn parse_prometheus_text(text: &str) -> Result<PromDoc, String> {
    let mut doc = PromDoc::default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("line {lineno}: malformed `# TYPE` declaration"));
                };
                if !is_metric_name(name) {
                    return Err(format!("line {lineno}: bad family name `{name}`"));
                }
                doc.types.push((name.to_owned(), kind.to_owned()));
            }
            // `# HELP` and free-form comments are legal and ignored.
            continue;
        }
        // Sample: name [{labels}] value [timestamp]
        let name_len = line
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b':')
            .count();
        let name = &line[..name_len];
        if !is_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name"));
        }
        let mut rest = &line[name_len..];
        let mut labels = Vec::new();
        if let Some(after_brace) = rest.strip_prefix('{') {
            let (parsed, consumed) = parse_labels(after_brace, lineno)?;
            labels = parsed;
            rest = &after_brace[consumed..];
        }
        let mut tokens = rest.split_whitespace();
        let Some(value_token) = tokens.next() else {
            return Err(format!("line {lineno}: missing sample value"));
        };
        let Some(value) = parse_value(value_token) else {
            return Err(format!("line {lineno}: bad sample value `{value_token}`"));
        };
        if let Some(timestamp) = tokens.next() {
            if timestamp.parse::<i64>().is_err() {
                return Err(format!("line {lineno}: bad timestamp `{timestamp}`"));
            }
        }
        if tokens.next().is_some() {
            return Err(format!("line {lineno}: trailing tokens after sample"));
        }
        doc.samples.push(PromSample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    Ok(doc)
}

/// The declared family a sample belongs to: the `_bucket`/`_sum`/`_count`
/// stem when that stem is a declared histogram, otherwise the name itself.
fn family_of<'a>(name: &'a str, types: &BTreeMap<&str, &str>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem) == Some(&"histogram") {
                return stem;
            }
        }
    }
    name
}

/// Validates `text` as a self-consistent exposition document: syntax, one
/// `# TYPE` per family (declared before its samples, kind one of
/// `counter`/`gauge`/`histogram`), every sample attributable to a declared
/// family, no duplicate series, non-negative finite counters, and — per
/// histogram series — strictly increasing `le` bounds ending in `+Inf`,
/// non-decreasing cumulative counts, and `_sum`/`_count` agreeing with the
/// `+Inf` bucket.
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate_prometheus_text(text: &str) -> Result<PromCheck, String> {
    let doc = parse_prometheus_text(text)?;
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    for (name, kind) in &doc.types {
        if !matches!(kind.as_str(), "counter" | "gauge" | "histogram") {
            return Err(format!("family `{name}`: unsupported type `{kind}`"));
        }
        if types.insert(name, kind).is_some() {
            return Err(format!("family `{name}`: duplicate `# TYPE` declaration"));
        }
    }
    // Declaration order: every family's TYPE line must precede its samples.
    // Re-walk the raw document order by replaying types as they appear.
    {
        let mut declared: BTreeSet<&str> = BTreeSet::new();
        let mut type_iter = doc.types.iter();
        let mut pending = type_iter.next();
        // `parse_prometheus_text` preserves the relative order of samples
        // but not their interleaving with TYPE lines; recover it cheaply by
        // re-scanning the text for line kinds.
        let mut sample_index = 0usize;
        for raw in text.lines() {
            let line = raw.trim_end_matches('\r');
            if line.trim().is_empty() {
                continue;
            }
            if line.starts_with('#') {
                if line
                    .trim_start_matches('#')
                    .trim_start()
                    .starts_with("TYPE ")
                {
                    if let Some((name, _)) = pending {
                        declared.insert(name);
                        pending = type_iter.next();
                    }
                }
                continue;
            }
            let Some(sample) = doc.samples.get(sample_index) else {
                break;
            };
            sample_index += 1;
            let family = family_of(&sample.name, &types);
            if types.contains_key(family) && !declared.contains(family) {
                return Err(format!(
                    "family `{family}`: sample appears before its `# TYPE` declaration"
                ));
            }
        }
    }

    let mut seen_series: BTreeSet<(String, Vec<(String, String)>)> = BTreeSet::new();
    for sample in &doc.samples {
        let family = family_of(&sample.name, &types);
        let Some(kind) = types.get(family) else {
            return Err(format!(
                "sample `{}`: no `# TYPE` declaration for its family",
                sample.name
            ));
        };
        for (key, _) in &sample.labels {
            if !is_label_key(key) {
                return Err(format!("sample `{}`: bad label key `{key}`", sample.name));
            }
        }
        let mut series_labels = sample.labels.clone();
        series_labels.sort();
        if !seen_series.insert((sample.name.clone(), series_labels)) {
            return Err(format!("sample `{}`: duplicate series", sample.name));
        }
        match *kind {
            "counter" if !sample.value.is_finite() || sample.value < 0.0 => {
                return Err(format!(
                    "counter `{}`: value must be finite and non-negative",
                    sample.name
                ));
            }
            "histogram" => {
                if family == sample.name {
                    return Err(format!(
                        "histogram `{family}`: bare sample without _bucket/_sum/_count"
                    ));
                }
                if !sample.value.is_finite() || sample.value < 0.0 {
                    return Err(format!(
                        "histogram `{family}`: sample values must be finite and non-negative"
                    ));
                }
            }
            _ => {}
        }
    }

    // Histogram series-group checks: buckets cumulative and +Inf-terminated,
    // `_count` equal to the +Inf bucket, `_sum` present — per label group
    // (labels minus `le`).
    type Group = Vec<(String, String)>;
    #[derive(Default)]
    struct HistogramSeries {
        buckets: Vec<(f64, f64)>,
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut series: BTreeMap<(String, Group), HistogramSeries> = BTreeMap::new();
    for sample in &doc.samples {
        let family = family_of(&sample.name, &types);
        if types.get(family) != Some(&"histogram") {
            continue;
        }
        let mut group: Group = sample
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        group.sort();
        let entry = series.entry((family.to_owned(), group)).or_default();
        if sample.name.ends_with("_bucket") {
            let Some((_, le)) = sample.labels.iter().find(|(k, _)| k == "le") else {
                return Err(format!("histogram `{family}`: _bucket without `le` label"));
            };
            let Some(bound) = parse_value(le) else {
                return Err(format!("histogram `{family}`: bad `le` bound `{le}`"));
            };
            entry.buckets.push((bound, sample.value));
        } else if sample.name.ends_with("_sum") {
            entry.sum = Some(sample.value);
        } else {
            entry.count = Some(sample.value);
        }
    }
    for ((family, _), data) in &series {
        if data.buckets.is_empty() {
            return Err(format!("histogram `{family}`: series has no buckets"));
        }
        for window in data.buckets.windows(2) {
            // `partial_cmp` so a NaN bound (incomparable) is rejected too.
            if window[0].0.partial_cmp(&window[1].0) != Some(std::cmp::Ordering::Less) {
                return Err(format!(
                    "histogram `{family}`: `le` bounds must strictly increase"
                ));
            }
            if window[0].1 > window[1].1 {
                return Err(format!(
                    "histogram `{family}`: bucket counts must be cumulative"
                ));
            }
        }
        let Some(&(last_bound, inf_count)) = data.buckets.last() else {
            continue;
        };
        if last_bound != f64::INFINITY {
            return Err(format!(
                "histogram `{family}`: series must end with an `+Inf` bucket"
            ));
        }
        match data.count {
            None => return Err(format!("histogram `{family}`: missing _count")),
            // Exact equality is the exposition contract: both values render
            // from the same integer counter.
            // cordoba-lint: allow(float-eq)
            Some(count) if count != inf_count => {
                return Err(format!(
                    "histogram `{family}`: _count ({count}) disagrees with +Inf bucket ({inf_count})"
                ));
            }
            Some(_) => {}
        }
        if data.sum.is_none() {
            return Err(format!("histogram `{family}`: missing _sum"));
        }
    }

    Ok(PromCheck {
        families: doc.types.len(),
        counters: doc.types.iter().filter(|(_, k)| k == "counter").count(),
        gauges: doc.types.iter().filter(|(_, k)| k == "gauge").count(),
        histograms: doc.types.iter().filter(|(_, k)| k == "histogram").count(),
        samples: doc.samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(counters: &[(&str, u64)]) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: counters
                .iter()
                .map(|&(name, value)| CounterState {
                    name: name.to_owned(),
                    labels: Vec::new(),
                    value,
                })
                .collect(),
            ..RegistrySnapshot::default()
        }
    }

    #[test]
    fn renders_and_validates_plain_counters() {
        let text = render_snapshot(&state(&[("carbon/fallback/queries", 12), ("a", 0)]));
        assert!(text.contains("# TYPE carbon_fallback_queries counter"));
        assert!(text.contains("carbon_fallback_queries 12"));
        let check = validate_prometheus_text(&text).unwrap();
        assert_eq!(check.counters, 2);
        assert_eq!(check.samples, 2);
    }

    #[test]
    fn mangling_collisions_disambiguate_with_a_name_label() {
        let text = render_snapshot(&state(&[("a/b", 1), ("a_b", 2)]));
        // One family, two samples, each carrying its original name.
        assert_eq!(text.matches("# TYPE a_b counter").count(), 1);
        assert!(text.contains("a_b{name=\"a/b\"} 1"));
        assert!(text.contains("a_b{name=\"a_b\"} 2"));
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn duplicate_sources_merge_instead_of_duplicating_series() {
        let text = render_snapshot(&state(&[("x", 1), ("x", 2)]));
        assert!(text.contains("x 3"));
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn cross_kind_collision_takes_a_suffix() {
        let mut snapshot = state(&[("depth", 1)]);
        snapshot.gauges.push(GaugeState {
            name: "depth".to_owned(),
            value: 2.5,
        });
        let text = render_snapshot(&snapshot);
        assert!(text.contains("# TYPE depth counter"));
        assert!(text.contains("# TYPE depth_gauge gauge"));
        assert!(text.contains("depth_gauge 2.5"));
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn histogram_renders_cumulative_le_buckets() {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        buckets[0] = 1; // one exact zero
        buckets[2] = 2; // two samples in [2, 4)
        let snapshot = RegistrySnapshot {
            histograms: vec![HistogramState {
                name: "core/sweep_ns".to_owned(),
                count: 3,
                sum: 6,
                buckets,
            }],
            ..RegistrySnapshot::default()
        };
        let text = render_snapshot(&snapshot);
        assert!(text.contains("# TYPE core_sweep_ns histogram"));
        assert!(text.contains("core_sweep_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("core_sweep_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("core_sweep_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("core_sweep_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("core_sweep_ns_sum 6"));
        assert!(text.contains("core_sweep_ns_count 3"));
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn zero_count_histogram_is_just_the_inf_bucket() {
        let snapshot = RegistrySnapshot {
            histograms: vec![HistogramState {
                name: "empty".to_owned(),
                count: 0,
                sum: 0,
                buckets: vec![0; HISTOGRAM_BUCKETS],
            }],
            ..RegistrySnapshot::default()
        };
        let text = render_snapshot(&snapshot);
        assert!(text.contains("empty_bucket{le=\"+Inf\"} 0"));
        assert!(!text.contains("le=\"0\""));
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let snapshot = RegistrySnapshot {
            counters: vec![CounterState {
                name: "c".to_owned(),
                labels: vec![("tier".to_owned(), "a\"b\\c\nd".to_owned())],
                value: 7,
            }],
            ..RegistrySnapshot::default()
        };
        let text = render_snapshot(&snapshot);
        assert!(text.contains("c{tier=\"a\\\"b\\\\c\\nd\"} 7"));
        let doc = parse_prometheus_text(&text).unwrap();
        assert_eq!(doc.samples[0].labels[0].1, "a\"b\\c\nd");
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn validator_rejects_broken_documents() {
        for (bad, why) in [
            ("c 1\n", "sample without TYPE"),
            ("# TYPE c counter\nc -1\n", "negative counter"),
            ("# TYPE c counter\nc 1\nc 2\n", "duplicate series"),
            ("# TYPE c counter\n# TYPE c counter\nc 1\n", "duplicate TYPE"),
            ("c 1\n# TYPE c counter\n", "TYPE after samples"),
            ("# TYPE c widget\nc 1\n", "unsupported type"),
            ("# TYPE h histogram\nh 5\n", "bare histogram sample"),
            (
                "# TYPE h histogram\nh_sum 1\nh_count 0\n",
                "histogram without buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n",
                "_count disagrees with +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
                "missing +Inf bucket",
            ),
            ("# TYPE c counter\nc{k=\"v} 1\n", "unterminated label"),
            ("# TYPE c counter\nc banana\n", "unparseable value"),
            ("# TYPE c counter\n9c 1\n", "bad metric name"),
        ] {
            assert!(validate_prometheus_text(bad).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn live_registry_renders_round_trip() {
        static PROM_TEST: crate::Counter = crate::Counter::new("test/prom/live");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        PROM_TEST.add(3);
        let text = render_prometheus();
        crate::set_metrics_enabled(false);
        let check = validate_prometheus_text(&text).unwrap();
        assert!(check.counters >= 1);
        let doc = parse_prometheus_text(&text).unwrap();
        assert!(doc
            .samples
            .iter()
            .any(|s| s.name == "test_prom_live" && s.value >= 3.0));
    }

    #[test]
    fn mangles_names_deterministically() {
        assert_eq!(mangle_metric_name("a/b/c"), "a_b_c");
        assert_eq!(mangle_metric_name("events/store_hit"), "events_store_hit");
        assert_eq!(mangle_metric_name("9lives"), "_9lives");
        assert_eq!(mangle_metric_name("ok:name_1"), "ok:name_1");
        assert_eq!(mangle_metric_name("sp ace-dash"), "sp_ace_dash");
        assert_eq!(mangle_metric_name(""), "_");
    }
}
