//! Chrome trace-event JSON export and validation.
//!
//! The export format is the Trace Event Format's JSON-array flavor, the
//! lingua franca of `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! an array of objects where spans are *complete* events (`"ph":"X"` with
//! microsecond `ts`/`dur`), structured events are zero-duration complete
//! events, and registered counters are appended as *counter* events
//! (`"ph":"C"`) on a synthetic `tid 0` track. Events are sorted by
//! `(tid, ts, seq)` so each thread's track is monotonic and parents always
//! precede their children — the order-stable span tree.
//!
//! [`validate_chrome_trace`] re-parses an exported document with the
//! in-crate JSON parser and checks the schema; the CLI's `trace-check`
//! command and the `obs-smoke` CI job are thin wrappers around it.

use crate::json::{parse, Json};
use crate::metrics::{counter_snapshot, histogram_snapshot};
use crate::span::{snapshot_records, take_records, Record, RecordArgs};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escapes `text` for inclusion inside a JSON string literal.
#[must_use]
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanosecond offset as fractional microseconds (the unit the
/// trace-event format uses for `ts` and `dur`).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Writes the `"args"` object for a record's fixed-size argument list.
fn write_args(out: &mut String, args: &RecordArgs) {
    out.push_str(",\"args\":{");
    let mut first = true;
    for (key, value) in args.iter().flatten() {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{value}", escape_json(key));
        first = false;
    }
    out.push('}');
}

/// Renders `records` plus a trailing counter track as a Chrome trace-event
/// JSON array.
fn render(mut records: Vec<Record>) -> String {
    fn sort_key(record: &Record) -> (u32, u64, u64) {
        match *record {
            Record::Span {
                tid, start_ns, seq, ..
            } => (tid, start_ns, seq),
            Record::Instant {
                tid, ts_ns, seq, ..
            } => (tid, ts_ns, seq),
        }
    }
    records.sort_unstable_by_key(sort_key);
    let counter_ts = records
        .iter()
        .map(|r| match *r {
            Record::Span {
                start_ns, dur_ns, ..
            } => start_ns.saturating_add(dur_ns),
            Record::Instant { ts_ns, .. } => ts_ns,
        })
        .max()
        .unwrap_or(0);
    let mut out = String::from("[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        out.push_str(&line);
        first = false;
    };
    for record in &records {
        let mut line = String::new();
        match *record {
            Record::Span {
                name,
                ref args,
                tid,
                start_ns,
                dur_ns,
                ..
            } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}",
                    escape_json(name),
                    micros(start_ns),
                    micros(dur_ns),
                );
                write_args(&mut line, args);
                line.push('}');
            }
            Record::Instant {
                name,
                ref args,
                tid,
                ts_ns,
                ..
            } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"X\",\"ts\":{},\"dur\":0.000,\"pid\":1,\"tid\":{tid}",
                    escape_json(name),
                    micros(ts_ns),
                );
                write_args(&mut line, args);
                line.push('}');
            }
        }
        emit(line, &mut out);
    }
    // Registered counters and histograms ride along as a final "C" sample
    // each on the synthetic tid-0 track, so the trace is self-contained.
    for (name, value) in counter_snapshot() {
        emit(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{value}}}}}",
                escape_json(name),
                micros(counter_ts),
            ),
            &mut out,
        );
    }
    for histogram in histogram_snapshot() {
        emit(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{\"count\":{},\"sum\":{}}}}}",
                escape_json(histogram.name()),
                micros(counter_ts),
                histogram.count(),
                histogram.sum(),
            ),
            &mut out,
        );
    }
    out.push_str("\n]\n");
    out
}

/// Exports the current trace buffer (without draining it) plus a counter
/// sample per registered counter as a Chrome trace-event JSON array.
#[must_use]
pub fn export_chrome_trace() -> String {
    render(snapshot_records())
}

/// Like [`export_chrome_trace`] but drains the buffer, so the next export
/// starts empty.
#[must_use]
pub fn drain_chrome_trace() -> String {
    render(take_records())
}

/// Summary of a validated Chrome trace, from [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in the array.
    pub events: usize,
    /// Complete (`"ph":"X"`) events.
    pub spans: usize,
    /// Counter (`"ph":"C"`) events.
    pub counters: usize,
    /// Distinct `tid` values seen.
    pub threads: usize,
}

/// Reads a finite, non-negative number field from an event object.
fn number_field(event: &Json, key: &str, index: usize) -> Result<f64, String> {
    let value = event
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event {index}: missing numeric \"{key}\""))?;
    if !value.is_finite() || value.is_sign_negative() {
        return Err(format!(
            "event {index}: \"{key}\" must be finite and >= 0, got {value}"
        ));
    }
    Ok(value)
}

/// Validates `text` as Chrome trace-event JSON of the shape this crate
/// exports: a non-empty array of `"ph":"X"` / `"ph":"C"` events carrying
/// `name`, `ts`, `pid`, `tid` (and `dur` for spans), with per-thread
/// monotonic timestamps.
///
/// # Errors
///
/// Returns a description of the first JSON syntax or schema violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .as_array()
        .ok_or_else(|| "top level is not a JSON array".to_string())?;
    if events.is_empty() {
        return Err("trace contains no events".to_string());
    }
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for (index, event) in events.iter().enumerate() {
        if event
            .get("name")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("event {index}: missing \"name\""));
        }
        let ts = number_field(event, "ts", index)?;
        let _ = number_field(event, "pid", index)?;
        let tid = number_field(event, "tid", index)?;
        match event.get("ph").and_then(Json::as_str) {
            Some("X") => {
                let _ = number_field(event, "dur", index)?;
                spans += 1;
            }
            Some("C") => counters += 1,
            other => {
                return Err(format!(
                    "event {index}: \"ph\" must be \"X\" or \"C\", got {other:?}"
                ));
            }
        }
        // Monotonic (non-decreasing) timestamps per thread track.
        let track = tid.to_bits();
        if let Some(previous) = last_ts.get(&track) {
            if ts < *previous {
                return Err(format!(
                    "event {index}: ts {ts} goes backwards on tid {tid} (previous {previous})"
                ));
            }
        }
        last_ts.insert(track, ts);
    }
    Ok(TraceCheck {
        events: events.len(),
        spans,
        counters,
        threads: last_ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, span_with, Event};

    #[test]
    fn exported_trace_validates_and_orders_threads() {
        let _guard = crate::test_lock();
        crate::set_tracing_enabled(true);
        crate::set_metrics_enabled(true);
        crate::clear_trace();
        {
            let _outer = span("test/chrome/outer");
            let _inner = span_with("test/chrome/inner", "items", 9);
            crate::record(&Event::Quarantine);
        }
        std::thread::spawn(|| {
            let _worker = span("test/chrome/worker");
        })
        .join()
        .unwrap();
        let text = drain_chrome_trace();
        crate::set_tracing_enabled(false);
        let check = validate_chrome_trace(&text).unwrap();
        assert!(check.spans >= 4, "{check:?}");
        assert!(check.counters >= 1, "{check:?}");
        assert!(check.threads >= 2, "{check:?}");
        assert!(text.contains("\"items\":9"));
        assert!(text.contains("events/quarantine"));
        // Drained: a second export has only the counter track.
        let empty = export_chrome_trace();
        assert!(!empty.contains("test/chrome/outer"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        // Missing dur on an X event.
        let no_dur = r#"[{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]"#;
        assert!(validate_chrome_trace(no_dur).is_err());
        // Unknown phase.
        let bad_ph = r#"[{"name":"a","ph":"B","ts":1,"dur":1,"pid":1,"tid":1}]"#;
        assert!(validate_chrome_trace(bad_ph).is_err());
        // Backwards timestamps on one thread.
        let backwards = r#"[
            {"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":4,"dur":1,"pid":1,"tid":1}
        ]"#;
        let err = validate_chrome_trace(backwards).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
        // The same timestamps on different threads are fine.
        let two_tracks = r#"[
            {"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":4,"dur":1,"pid":1,"tid":2}
        ]"#;
        let check = validate_chrome_trace(two_tracks).unwrap();
        assert_eq!(check.threads, 2);
        assert_eq!(check.spans, 2);
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
