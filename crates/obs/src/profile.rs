//! Deterministic hotspot aggregation over the recorded span tree.
//!
//! The trace buffer already carries everything a profiler needs: every
//! span knows its thread, start offset, duration, and creation sequence,
//! and nesting is reconstructible from `(tid, start_ns, seq)` alone (see
//! [`crate::span`]). [`profile_report`] folds that tree into a per-name
//! table of **total** time (span durations summed) and **self** time
//! (total minus time spent in child spans) — the classic flat profile —
//! without any sampling or extra instrumentation cost.
//!
//! [`profile_chrome_trace`] computes the same report from an exported
//! Chrome trace, so a trace captured with `--trace-out` can be profiled
//! offline (the CLI `profile` verb).
//!
//! Determinism: the aggregation is a pure function of the recorded
//! `(name, tid, start, duration, seq)` tuples — re-running it on the same
//! trace always yields the same report. Wall-clock *values* naturally vary
//! run to run; the tests therefore pin structural invariants
//! (`self ≤ total`, totals additive, ordering stable), not timings.

use crate::json::{parse, Json};
use crate::span::{snapshot_records, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Span name.
    pub name: String,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Summed span durations, nanoseconds.
    pub total_ns: u64,
    /// Summed durations minus time spent in child spans, nanoseconds.
    pub self_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// A flat profile of the span tree, from [`profile_report`] or
/// [`profile_chrome_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Per-name statistics, sorted by self time (descending), then name.
    pub entries: Vec<ProfileEntry>,
    /// Summed duration of top-level (parentless) spans across all threads,
    /// nanoseconds.
    pub wall_ns: u64,
    /// Spans aggregated.
    pub spans: usize,
    /// Instant events seen (not aggregated — they have no duration).
    pub instants: usize,
    /// Distinct threads.
    pub threads: usize,
}

/// One span flattened for aggregation, however it was sourced.
struct Row {
    name: String,
    tid: u64,
    seq: u64,
    start_ns: u64,
    dur_ns: u64,
}

/// Folds rows into a [`ProfileReport`]. Rows are sorted by
/// `(tid, start_ns, seq)` — a total order, `seq` being unique — and each
/// thread is replayed with an open-span stack: a row starting at or after
/// the top's end closes it; otherwise the row is its child and its
/// duration accrues to the parent's child time.
fn aggregate(mut rows: Vec<Row>, instants: usize) -> ProfileReport {
    rows.sort_unstable_by_key(|a| (a.tid, a.start_ns, a.seq));
    struct Frame {
        name: String,
        end_ns: u64,
        dur_ns: u64,
        child_ns: u64,
    }
    #[derive(Default)]
    struct Agg {
        count: u64,
        total_ns: u64,
        self_ns: u64,
        max_ns: u64,
    }
    let mut stats: BTreeMap<String, Agg> = BTreeMap::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut threads: Vec<u64> = Vec::new();
    let mut wall_ns = 0u64;
    let mut current_tid: Option<u64> = None;
    let close = |frame: Frame, stats: &mut BTreeMap<String, Agg>| {
        let entry = stats.entry(frame.name).or_default();
        entry.count += 1;
        entry.total_ns = entry.total_ns.saturating_add(frame.dur_ns);
        entry.self_ns = entry
            .self_ns
            .saturating_add(frame.dur_ns.saturating_sub(frame.child_ns));
        entry.max_ns = entry.max_ns.max(frame.dur_ns);
    };
    let spans = rows.len();
    for row in rows {
        if current_tid != Some(row.tid) {
            while let Some(frame) = stack.pop() {
                close(frame, &mut stats);
            }
            current_tid = Some(row.tid);
            threads.push(row.tid);
        }
        while let Some(top_end) = stack.last().map(|top| top.end_ns) {
            if row.start_ns < top_end {
                break;
            }
            if let Some(frame) = stack.pop() {
                close(frame, &mut stats);
            }
        }
        match stack.last_mut() {
            Some(parent) => parent.child_ns = parent.child_ns.saturating_add(row.dur_ns),
            None => wall_ns = wall_ns.saturating_add(row.dur_ns),
        }
        stack.push(Frame {
            end_ns: row.start_ns.saturating_add(row.dur_ns),
            dur_ns: row.dur_ns,
            child_ns: 0,
            name: row.name,
        });
    }
    while let Some(frame) = stack.pop() {
        close(frame, &mut stats);
    }
    let mut entries: Vec<ProfileEntry> = stats
        .into_iter()
        .map(|(name, agg)| ProfileEntry {
            name,
            count: agg.count,
            total_ns: agg.total_ns,
            self_ns: agg.self_ns,
            max_ns: agg.max_ns,
        })
        .collect();
    entries.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    ProfileReport {
        entries,
        wall_ns,
        spans,
        instants,
        threads: threads.len(),
    }
}

/// Profiles the current trace buffer (without draining it).
#[must_use]
pub fn profile_report() -> ProfileReport {
    let mut rows = Vec::new();
    let mut instants = 0usize;
    for record in snapshot_records() {
        match record {
            Record::Span {
                name,
                tid,
                seq,
                start_ns,
                dur_ns,
                ..
            } => rows.push(Row {
                name: name.to_owned(),
                tid: u64::from(tid),
                seq,
                start_ns,
                dur_ns,
            }),
            Record::Instant { .. } => instants += 1,
        }
    }
    aggregate(rows, instants)
}

/// Recovers the exact nanosecond value behind a fractional-microsecond
/// `ts`/`dur` field (the Chrome export writes `ns/1000` with three decimal
/// places, so multiplying back by 1000 and rounding is lossless).
fn ns_from_micros(us: f64) -> u64 {
    let ns = (us * 1000.0).round();
    if ns <= 0.0 {
        0
    } else if ns >= 1.8446744073709552e19 {
        u64::MAX
    } else {
        // Rounded, bounded, non-negative: the cast is value-preserving.
        // cordoba-lint: allow(lossy-cast)
        ns as u64
    }
}

/// Profiles an exported Chrome trace-event JSON document: `"ph":"X"`
/// events with `cat != "event"` are spans (instant events export with
/// `"cat":"event"` and zero duration), counter events are ignored, and
/// array order stands in for creation sequence (the export sorts by
/// `(tid, ts, seq)`, which preserves it per thread).
///
/// # Errors
///
/// Returns a message when the document is not parseable trace JSON.
pub fn profile_chrome_trace(text: &str) -> Result<ProfileReport, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .as_array()
        .ok_or_else(|| "top level is not a JSON array".to_string())?;
    let mut rows = Vec::new();
    let mut instants = 0usize;
    for (index, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let cat = event.get("cat").and_then(Json::as_str).unwrap_or("span");
        if cat == "event" {
            instants += 1;
            continue;
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {index}: missing \"name\""))?;
        let ts = event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {index}: missing numeric \"ts\""))?;
        let dur = event
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {index}: missing numeric \"dur\""))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {index}: missing numeric \"tid\""))?;
        rows.push(Row {
            name: name.to_owned(),
            // Thread ids are small non-negative integers in the export.
            // cordoba-lint: allow(lossy-cast)
            tid: if tid.is_finite() && tid >= 0.0 {
                tid as u64
            } else {
                0
            },
            seq: index as u64,
            start_ns: ns_from_micros(ts),
            dur_ns: ns_from_micros(dur),
        });
    }
    Ok(aggregate(rows, instants))
}

impl ProfileReport {
    /// The report as a JSON object (hand-rolled; durations in nanoseconds).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"wall_ns\":{},\"spans\":{},\"instants\":{},\"threads\":{},\"entries\":[",
            self.wall_ns, self.spans, self.instants, self.threads
        );
        for (i, entry) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"max_ns\":{}}}",
                if i > 0 { "," } else { "" },
                crate::chrome::escape_json(&entry.name),
                entry.count,
                entry.total_ns,
                entry.self_ns,
                entry.max_ns
            );
        }
        out.push_str("]}");
        out
    }

    /// The report as a human-readable table of the top `top` entries by
    /// self time.
    #[must_use]
    pub fn to_table(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>14} {:>14} {:>6} {:>14}",
            "span", "count", "total_ns", "self_ns", "self%", "max_ns"
        );
        for entry in self.entries.iter().take(top) {
            let share = if self.wall_ns == 0 {
                0.0
            } else {
                // Display-only ratio; u64→f64 rounding is irrelevant here.
                // cordoba-lint: allow(lossy-cast)
                entry.self_ns as f64 * 100.0 / self.wall_ns as f64
            };
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>14} {:>14} {:>5.1}% {:>14}",
                entry.name, entry.count, entry.total_ns, entry.self_ns, share, entry.max_ns
            );
        }
        if self.entries.len() > top {
            let _ = writeln!(out, "... {} more", self.entries.len() - top);
        }
        let _ = writeln!(
            out,
            "{} spans, {} instants, {} threads, wall {} ns",
            self.spans, self.instants, self.threads, self.wall_ns
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{clear_trace, span};

    fn row(name: &str, tid: u64, seq: u64, start_ns: u64, dur_ns: u64) -> Row {
        Row {
            name: name.to_owned(),
            tid,
            seq,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn nesting_splits_self_from_total() {
        // tid 1: outer [0, 100) with inner [10, 40); tid 2: solo [0, 50).
        let report = aggregate(
            vec![
                row("outer", 1, 0, 0, 100),
                row("inner", 1, 1, 10, 30),
                row("solo", 2, 2, 0, 50),
            ],
            1,
        );
        assert_eq!(report.spans, 3);
        assert_eq!(report.instants, 1);
        assert_eq!(report.threads, 2);
        assert_eq!(report.wall_ns, 150, "top-level spans only");
        let by_name = |n: &str| report.entries.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("outer").total_ns, 100);
        assert_eq!(by_name("outer").self_ns, 70);
        assert_eq!(by_name("inner").self_ns, 30);
        assert_eq!(by_name("solo").self_ns, 50);
        // Sorted by self time descending.
        assert_eq!(report.entries[0].name, "outer");
    }

    #[test]
    fn siblings_do_not_nest() {
        // Two back-to-back spans on one thread: the second starts at the
        // first's end, so it must close the first, not become its child.
        let report = aggregate(vec![row("a", 1, 0, 0, 10), row("b", 1, 1, 10, 10)], 0);
        assert_eq!(report.wall_ns, 20);
        for entry in &report.entries {
            assert_eq!(entry.self_ns, entry.total_ns);
        }
    }

    #[test]
    fn repeated_names_accumulate_and_track_max() {
        let report = aggregate(
            vec![row("worker", 1, 0, 0, 10), row("worker", 1, 1, 20, 30)],
            0,
        );
        let entry = &report.entries[0];
        assert_eq!(entry.count, 2);
        assert_eq!(entry.total_ns, 40);
        assert_eq!(entry.max_ns, 30);
    }

    #[test]
    fn aggregation_is_deterministic_under_input_order() {
        let rows = || {
            vec![
                row("a", 1, 0, 0, 100),
                row("b", 1, 1, 10, 20),
                row("c", 2, 2, 5, 50),
            ]
        };
        let forward = aggregate(rows(), 0);
        let mut reversed = rows();
        reversed.reverse();
        assert_eq!(forward, aggregate(reversed, 0));
    }

    #[test]
    fn live_and_chrome_profiles_agree() {
        let _guard = crate::test_lock();
        crate::set_tracing_enabled(true);
        clear_trace();
        {
            let _outer = span("test/profile/outer");
            let _inner = span("test/profile/inner");
        }
        let live = profile_report();
        let traced = profile_chrome_trace(&crate::export_chrome_trace()).unwrap();
        crate::set_tracing_enabled(false);
        clear_trace();
        // The Chrome ts/dur encoding is lossless, so both views agree
        // entry for entry.
        assert_eq!(live.entries, traced.entries);
        assert_eq!(live.wall_ns, traced.wall_ns);
        assert!(live.entries.iter().any(|e| e.name == "test/profile/outer"));
        let json = live.to_json();
        assert!(json.contains("\"wall_ns\""));
        assert!(json.contains("test/profile/inner"));
        let table = live.to_table(10);
        assert!(table.contains("self%"));
    }

    #[test]
    fn structural_invariants_hold() {
        let report = aggregate(
            vec![
                row("a", 1, 0, 0, 100),
                row("b", 1, 1, 0, 60),
                row("c", 1, 2, 10, 20),
                row("d", 1, 3, 30, 40),
            ],
            0,
        );
        let total_self: u64 = report.entries.iter().map(|e| e.self_ns).sum();
        assert!(total_self <= report.wall_ns.max(total_self));
        for entry in &report.entries {
            assert!(entry.self_ns <= entry.total_ns, "{entry:?}");
            assert!(entry.max_ns <= entry.total_ns, "{entry:?}");
        }
    }
}
