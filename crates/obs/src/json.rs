//! A minimal, panic-free JSON parser.
//!
//! The workspace is dependency-free by policy (see DESIGN.md §1), so the
//! Chrome-trace validator cannot lean on `serde_json`. This recursive-
//! descent parser covers the full JSON grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null) with a recursion-depth cap, and
//! is used by [`crate::validate_chrome_trace`] and the CLI's `trace-check`
//! command. It is a *reader* for validation — the exporters in this crate
//! write their JSON directly.

use std::fmt;

/// Maximum nesting depth accepted before the parser gives up; deep enough
/// for any trace file, shallow enough to never overflow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like browsers do).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside a [`Json::Num`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside a [`Json::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of a [`Json::Arr`].
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses `text` as a single JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first syntax error, trailing
/// garbage, or nesting beyond the depth cap.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.fail("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `literal` if it is next in the input.
    fn eat(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.fail("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.fail("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.fail("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim; the input came
                    // from a `&str`, so boundaries are always valid.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]).min(rest.len());
                    match std::str::from_utf8(&rest[..len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.fail("invalid UTF-8 in string")),
                    }
                    self.pos += len;
                }
            }
        }
    }

    /// Decodes `\uXXXX` (with surrogate-pair handling) after the `\u` has
    /// been consumed.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let high = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&high) {
            // A high surrogate must be followed by `\uXXXX` low surrogate.
            if self.eat("\\u") {
                let low = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let combined =
                        0x10000 + ((u32::from(high) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.fail("invalid surrogate"));
                }
            }
            return Err(self.fail("unpaired surrogate escape"));
        }
        char::from_u32(u32::from(high)).ok_or_else(|| self.fail("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut value: u16 = 0;
        for _ in 0..4 {
            let byte = self
                .peek()
                .ok_or_else(|| self.fail("truncated \\u escape"))?;
            let digit = match byte {
                b'0'..=b'9' => byte - b'0',
                b'a'..=b'f' => byte - b'a' + 10,
                b'A'..=b'F' => byte - b'A' + 10,
                _ => return Err(self.fail("non-hex digit in \\u escape")),
            };
            value = (value << 4) | u16::from(digit);
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.fail("malformed number"))
    }
}

/// Length in bytes of the UTF-8 character starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        let doc = parse("{\"xs\": [1, 2, {\"k\": \"v\"}], \"ok\": false}").unwrap();
        let xs = doc.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("k").unwrap().as_str(), Some("v"));
        assert_eq!(doc.get("ok").unwrap(), &Json::Bool(false));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn decodes_utf8_and_surrogate_pairs() {
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "01x",
            "nul",
            "[1] extra",
            "\"\\q\"",
            "\"\\ud800\"",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "accepted 200-deep nesting");
    }
}
