//! Named atomic counters and fixed-bucket histograms with a global,
//! opt-in registry.
//!
//! Metrics are declared as `static` items and self-register into the
//! process-wide registry the first time they are touched while metrics are
//! enabled. The update paths are allocation-free after that one-time
//! registration: a disabled counter costs a single relaxed load, an enabled
//! one a relaxed load plus a relaxed `fetch_add`. This keeps instrumented
//! hot loops within measurement noise of uninstrumented ones (bench_smoke
//! records the comparison as `obs/disabled_overhead/*`).

use crate::metrics_enabled;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Number of histogram buckets: one per power of two of a `u64` value,
/// plus a zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maximum label cells a [`LabeledCounter`] can carry; small and fixed so
/// the cell array lives inline in the static with no allocation.
pub const MAX_LABEL_CELLS: usize = 8;

/// Registered counters, in first-touch order (sorted by name at dump time).
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

/// Registered histograms, in first-touch order.
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// Registered labeled counters, in first-touch order.
static LABELED: Mutex<Vec<&'static LabeledCounter>> = Mutex::new(Vec::new());

/// Registered gauges, in first-touch order.
static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());

/// Recovers the guard from a poisoned registry lock: the registry holds
/// plain pointers, so a panic mid-push cannot leave it inconsistent.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A named monotonic counter backed by a relaxed `AtomicU64`.
///
/// Declare counters as `static` items so they live for the whole process
/// and can self-register:
///
/// ```
/// use cordoba_obs::Counter;
///
/// static LOOKUPS: Counter = Counter::new("example/lookups");
///
/// cordoba_obs::set_metrics_enabled(true);
/// LOOKUPS.add(3);
/// assert_eq!(LOOKUPS.value(), 3);
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name`; names are `/`-separated paths like
    /// `"carbon/fallback/queries"`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op while metrics are disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one; a no-op while metrics are disabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current value (readable even while metrics are disabled).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// One-time registration into the global registry; the only counter
    /// operation that allocates.
    #[cold]
    fn register(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&COUNTERS).push(self);
    }
}

/// A [`Counter`] family keyed by one static label with a fixed set of
/// values — e.g. `carbon/fallback/tier_hits{tier="trace"}`. Each label
/// value owns one atomic cell, so updates stay lock- and allocation-free:
///
/// ```
/// use cordoba_obs::LabeledCounter;
///
/// static HITS: LabeledCounter =
///     LabeledCounter::new("example/tier_hits", "tier", &["trace", "constant"]);
///
/// cordoba_obs::set_metrics_enabled(true);
/// HITS.incr(0); // tier="trace"
/// assert_eq!(HITS.cell_value(0), 1);
/// ```
///
/// Out-of-range cell indices land in the *last* cell, so declaring a
/// trailing catch-all value (e.g. `"other"`) gives open-ended indices a
/// well-defined label instead of a panic.
#[derive(Debug)]
pub struct LabeledCounter {
    name: &'static str,
    label: &'static str,
    values: &'static [&'static str],
    cells: [AtomicU64; MAX_LABEL_CELLS],
    registered: AtomicBool,
}

impl LabeledCounter {
    /// A new labeled counter; `values` are the label values, one cell each.
    ///
    /// # Panics
    ///
    /// Panics at `const` evaluation time when `values` is empty or longer
    /// than [`MAX_LABEL_CELLS`] — a declaration bug, never a runtime one.
    #[must_use]
    pub const fn new(
        name: &'static str,
        label: &'static str,
        values: &'static [&'static str],
    ) -> Self {
        assert!(
            !values.is_empty() && values.len() <= MAX_LABEL_CELLS,
            "label values must number 1..=MAX_LABEL_CELLS"
        ); // cordoba-lint: allow(no-panic) — const-eval declaration check
        Self {
            name,
            label,
            values,
            cells: [const { AtomicU64::new(0) }; MAX_LABEL_CELLS],
            registered: AtomicBool::new(false),
        }
    }

    /// The family's registry name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The label key.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        self.label
    }

    /// The label values, in cell order.
    #[must_use]
    pub const fn values(&self) -> &'static [&'static str] {
        self.values
    }

    /// Adds `n` to the cell for label value `cell` (clamped to the last
    /// declared value); a no-op while metrics are disabled.
    #[inline]
    pub fn add(&'static self, cell: usize, n: u64) {
        if !metrics_enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        let index = cell.min(self.values.len() - 1);
        self.cells[index].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the cell for label value `cell`; a no-op while metrics
    /// are disabled.
    #[inline]
    pub fn incr(&'static self, cell: usize) {
        self.add(cell, 1);
    }

    /// The current value of cell `cell` (zero when out of range; readable
    /// even while metrics are disabled).
    #[must_use]
    pub fn cell_value(&self, cell: usize) -> u64 {
        self.cells
            .get(cell)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// One-time registration into the global registry.
    #[cold]
    fn register(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&LABELED).push(self);
    }
}

/// A named gauge holding one `f64` (stored as IEEE-754 bits in an
/// `AtomicU64`), for last-observed values that can move both ways —
/// e.g. a cache occupancy or the current β of an in-flight solve.
///
/// ```
/// use cordoba_obs::Gauge;
///
/// static DEPTH: Gauge = Gauge::new("example/queue_depth");
///
/// cordoba_obs::set_metrics_enabled(true);
/// DEPTH.set(3.0);
/// assert_eq!(DEPTH.value(), 3.0);
/// ```
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new gauge named `name`, initially `0.0`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            bits: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's registry name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge; a no-op while metrics are disabled.
    #[inline]
    pub fn set(&'static self, value: f64) {
        if !metrics_enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value (readable even while metrics are disabled).
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// One-time registration into the global registry.
    #[cold]
    fn register(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&GAUGES).push(self);
    }
}

/// A named fixed-bucket histogram of `u64` samples (typically durations in
/// nanoseconds), bucketed by power of two.
///
/// Bucket `0` holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Recording is allocation-free and lock-free: three
/// relaxed `fetch_add`s when enabled, one relaxed load when disabled.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram named `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample; a no-op while metrics are disabled.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !metrics_enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        let index = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on `u64` overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The inclusive lower bound of bucket `index`.
    #[must_use]
    pub fn bucket_floor(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i < HISTOGRAM_BUCKETS => 1u64 << (i - 1),
            _ => u64::MAX,
        }
    }

    /// Snapshot of every bucket count, in bucket-index order (index `0` is
    /// the zero bucket; index `i ≥ 1` covers `[2^(i-1), 2^i)`). This is the
    /// raw, non-cumulative view the Prometheus renderer folds into
    /// cumulative `le` buckets.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Snapshot of the non-empty buckets as `(floor, count)` pairs.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_floor(i), n))
            })
            .collect()
    }

    /// One-time registration into the global registry.
    #[cold]
    fn register(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&HISTOGRAMS).push(self);
    }
}

/// Snapshot of every registered counter as `(name, value)`, sorted by name.
#[must_use]
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = lock(&COUNTERS)
        .iter()
        .map(|c| (c.name, c.value()))
        .collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// Snapshot of every registered histogram, sorted by name.
#[must_use]
pub(crate) fn histogram_snapshot() -> Vec<&'static Histogram> {
    let mut out: Vec<&'static Histogram> = lock(&HISTOGRAMS).iter().copied().collect();
    out.sort_unstable_by_key(|h| h.name);
    out
}

/// Snapshot of every registered labeled-counter cell as
/// `(family name, label key, label value, count)`, sorted by family name
/// with cells in declared order.
#[must_use]
pub fn labeled_counter_snapshot() -> Vec<(&'static str, &'static str, &'static str, u64)> {
    let mut families: Vec<&'static LabeledCounter> = lock(&LABELED).iter().copied().collect();
    families.sort_unstable_by_key(|c| c.name);
    families
        .iter()
        .flat_map(|family| {
            family
                .values
                .iter()
                .enumerate()
                .map(|(i, value)| (family.name, family.label, *value, family.cell_value(i)))
        })
        .collect()
}

/// Snapshot of every registered gauge as `(name, value)`, sorted by name.
#[must_use]
pub fn gauge_snapshot() -> Vec<(&'static str, f64)> {
    let mut out: Vec<(&'static str, f64)> =
        lock(&GAUGES).iter().map(|g| (g.name, g.value())).collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// Dumps the registry as JSON lines — one object per registered counter,
/// labeled-counter cell, gauge, and histogram, sorted by name within each
/// kind. Histogram buckets carry their power-of-two floors first-class, so
/// consumers never re-derive the boundaries:
///
/// ```text
/// {"type":"counter","name":"carbon/fallback/queries","value":12}
/// {"type":"counter","name":"core/store/ops","labels":{"op":"hit"},"value":3}
/// {"type":"gauge","name":"accel/embodied_cache/entries","value":121}
/// {"type":"histogram","name":"core/evaluate_space_ns","count":3,"sum":41872,"buckets":[{"bucket_floor":8192,"count":2},{"bucket_floor":16384,"count":1}]}
/// ```
#[must_use]
pub fn dump_json_lines() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in counter_snapshot() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            crate::chrome::escape_json(name)
        );
    }
    for (name, label, label_value, value) in labeled_counter_snapshot() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"labels\":{{\"{}\":\"{}\"}},\"value\":{value}}}",
            crate::chrome::escape_json(name),
            crate::chrome::escape_json(label),
            crate::chrome::escape_json(label_value)
        );
    }
    for (name, value) in gauge_snapshot() {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            crate::chrome::escape_json(name),
            json_f64(value)
        );
    }
    for histogram in histogram_snapshot() {
        let _ = write!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
            crate::chrome::escape_json(histogram.name),
            histogram.count(),
            histogram.sum()
        );
        for (i, (floor, n)) in histogram.nonzero_buckets().into_iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"bucket_floor\":{floor},\"count\":{n}}}",
                if i > 0 { "," } else { "" }
            );
        }
        out.push_str("]}\n");
    }
    out
}

/// Renders an `f64` as a JSON value: finite values round-trip through the
/// shortest decimal form, non-finite ones become `null` (JSON has no
/// Inf/NaN literals).
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counter_records_nothing() {
        static DISABLED: Counter = Counter::new("test/metrics/disabled");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(false);
        DISABLED.add(7);
        assert_eq!(DISABLED.value(), 0);
    }

    #[test]
    fn enabled_counter_accumulates_and_registers() {
        static ENABLED: Counter = Counter::new("test/metrics/enabled");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        ENABLED.incr();
        ENABLED.add(4);
        assert_eq!(ENABLED.value(), 5);
        assert!(counter_snapshot()
            .iter()
            .any(|(name, value)| *name == "test/metrics/enabled" && *value == 5));
        let dump = dump_json_lines();
        assert!(dump.contains("\"name\":\"test/metrics/enabled\",\"value\":5"));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        static HIST: Histogram = Histogram::new("test/metrics/hist");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        HIST.record(0);
        HIST.record(1);
        HIST.record(1);
        HIST.record(1000);
        assert_eq!(HIST.count(), 4);
        assert_eq!(HIST.sum(), 1002);
        let buckets = HIST.nonzero_buckets();
        assert!(buckets.contains(&(0, 1)), "zero bucket: {buckets:?}");
        assert!(buckets.contains(&(1, 2)), "ones bucket: {buckets:?}");
        // 1000 lands in [512, 1024).
        assert!(buckets.contains(&(512, 1)), "512 bucket: {buckets:?}");
        assert!(dump_json_lines().contains("\"name\":\"test/metrics/hist\""));
    }

    #[test]
    fn labeled_counter_cells_accumulate_and_clamp() {
        static TIERS: LabeledCounter = LabeledCounter::new(
            "test/metrics/tiers",
            "tier",
            &["trace", "constant", "other"],
        );
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        TIERS.incr(0);
        TIERS.add(1, 2);
        // Out-of-range cells land in the trailing catch-all.
        TIERS.incr(17);
        assert_eq!(TIERS.cell_value(0), 1);
        assert_eq!(TIERS.cell_value(1), 2);
        assert_eq!(TIERS.cell_value(2), 1);
        assert_eq!(TIERS.cell_value(99), 0);
        let cells = labeled_counter_snapshot();
        assert!(cells.contains(&("test/metrics/tiers", "tier", "trace", 1)));
        assert!(cells.contains(&("test/metrics/tiers", "tier", "other", 1)));
        let dump = dump_json_lines();
        assert!(dump.contains(
            "\"name\":\"test/metrics/tiers\",\"labels\":{\"tier\":\"constant\"},\"value\":2"
        ));
        crate::set_metrics_enabled(false);
        TIERS.incr(0);
        assert_eq!(TIERS.cell_value(0), 1, "disabled updates must not record");
    }

    #[test]
    fn gauge_holds_last_set_value() {
        static LEVEL: Gauge = Gauge::new("test/metrics/level");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(false);
        LEVEL.set(9.0);
        assert_eq!(LEVEL.value(), 0.0, "disabled sets must not record");
        crate::set_metrics_enabled(true);
        LEVEL.set(1.5);
        LEVEL.set(-2.25);
        assert_eq!(LEVEL.value(), -2.25);
        assert!(gauge_snapshot().contains(&("test/metrics/level", -2.25)));
        assert!(dump_json_lines()
            .contains("{\"type\":\"gauge\",\"name\":\"test/metrics/level\",\"value\":-2.25}"));
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn bucket_counts_expose_the_raw_buckets() {
        static RAW: Histogram = Histogram::new("test/metrics/raw_buckets");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        RAW.record(0);
        RAW.record(3);
        RAW.record(3);
        let counts = RAW.bucket_counts();
        assert_eq!(counts[0], 1, "zero bucket");
        assert_eq!(counts[2], 2, "3 lands in [2, 4)");
        assert_eq!(counts.iter().sum::<u64>(), RAW.count());
        assert!(dump_json_lines().contains("{\"bucket_floor\":2,\"count\":2}"));
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn bucket_floors_are_monotonic() {
        let floors: Vec<u64> = (0..HISTOGRAM_BUCKETS)
            .map(Histogram::bucket_floor)
            .collect();
        assert_eq!(floors[0], 0);
        assert_eq!(floors[1], 1);
        assert_eq!(floors[64], 1u64 << 63);
        assert!(floors.windows(2).all(|w| w[0] < w[1]));
    }
}
