//! Named atomic counters and fixed-bucket histograms with a global,
//! opt-in registry.
//!
//! Metrics are declared as `static` items and self-register into the
//! process-wide registry the first time they are touched while metrics are
//! enabled. The update paths are allocation-free after that one-time
//! registration: a disabled counter costs a single relaxed load, an enabled
//! one a relaxed load plus a relaxed `fetch_add`. This keeps instrumented
//! hot loops within measurement noise of uninstrumented ones (bench_smoke
//! records the comparison as `obs/disabled_overhead/*`).

use crate::metrics_enabled;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Number of histogram buckets: one per power of two of a `u64` value,
/// plus a zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Registered counters, in first-touch order (sorted by name at dump time).
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

/// Registered histograms, in first-touch order.
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// Recovers the guard from a poisoned registry lock: the registry holds
/// plain pointers, so a panic mid-push cannot leave it inconsistent.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A named monotonic counter backed by a relaxed `AtomicU64`.
///
/// Declare counters as `static` items so they live for the whole process
/// and can self-register:
///
/// ```
/// use cordoba_obs::Counter;
///
/// static LOOKUPS: Counter = Counter::new("example/lookups");
///
/// cordoba_obs::set_metrics_enabled(true);
/// LOOKUPS.add(3);
/// assert_eq!(LOOKUPS.value(), 3);
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name`; names are `/`-separated paths like
    /// `"carbon/fallback/queries"`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op while metrics are disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one; a no-op while metrics are disabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current value (readable even while metrics are disabled).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// One-time registration into the global registry; the only counter
    /// operation that allocates.
    #[cold]
    fn register(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&COUNTERS).push(self);
    }
}

/// A named fixed-bucket histogram of `u64` samples (typically durations in
/// nanoseconds), bucketed by power of two.
///
/// Bucket `0` holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Recording is allocation-free and lock-free: three
/// relaxed `fetch_add`s when enabled, one relaxed load when disabled.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram named `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample; a no-op while metrics are disabled.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !metrics_enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        let index = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on `u64` overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The inclusive lower bound of bucket `index`.
    #[must_use]
    pub fn bucket_floor(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i < HISTOGRAM_BUCKETS => 1u64 << (i - 1),
            _ => u64::MAX,
        }
    }

    /// Snapshot of the non-empty buckets as `(floor, count)` pairs.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_floor(i), n))
            })
            .collect()
    }

    /// One-time registration into the global registry.
    #[cold]
    fn register(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&HISTOGRAMS).push(self);
    }
}

/// Snapshot of every registered counter as `(name, value)`, sorted by name.
#[must_use]
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = lock(&COUNTERS)
        .iter()
        .map(|c| (c.name, c.value()))
        .collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// Snapshot of every registered histogram, sorted by name.
#[must_use]
pub(crate) fn histogram_snapshot() -> Vec<&'static Histogram> {
    let mut out: Vec<&'static Histogram> = lock(&HISTOGRAMS).iter().copied().collect();
    out.sort_unstable_by_key(|h| h.name);
    out
}

/// Dumps the registry as JSON lines — one object per registered counter and
/// histogram, sorted by name within each kind:
///
/// ```text
/// {"type":"counter","name":"carbon/fallback/queries","value":12}
/// {"type":"histogram","name":"core/evaluate_space_ns","count":3,"sum":41872,"buckets":[[8192,2],[16384,1]]}
/// ```
#[must_use]
pub fn dump_json_lines() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in counter_snapshot() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            crate::chrome::escape_json(name)
        );
    }
    for histogram in histogram_snapshot() {
        let _ = write!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
            crate::chrome::escape_json(histogram.name),
            histogram.count(),
            histogram.sum()
        );
        for (i, (floor, n)) in histogram.nonzero_buckets().into_iter().enumerate() {
            let _ = write!(out, "{}[{floor},{n}]", if i > 0 { "," } else { "" });
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counter_records_nothing() {
        static DISABLED: Counter = Counter::new("test/metrics/disabled");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(false);
        DISABLED.add(7);
        assert_eq!(DISABLED.value(), 0);
    }

    #[test]
    fn enabled_counter_accumulates_and_registers() {
        static ENABLED: Counter = Counter::new("test/metrics/enabled");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        ENABLED.incr();
        ENABLED.add(4);
        assert_eq!(ENABLED.value(), 5);
        assert!(counter_snapshot()
            .iter()
            .any(|(name, value)| *name == "test/metrics/enabled" && *value == 5));
        let dump = dump_json_lines();
        assert!(dump.contains("\"name\":\"test/metrics/enabled\",\"value\":5"));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        static HIST: Histogram = Histogram::new("test/metrics/hist");
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        HIST.record(0);
        HIST.record(1);
        HIST.record(1);
        HIST.record(1000);
        assert_eq!(HIST.count(), 4);
        assert_eq!(HIST.sum(), 1002);
        let buckets = HIST.nonzero_buckets();
        assert!(buckets.contains(&(0, 1)), "zero bucket: {buckets:?}");
        assert!(buckets.contains(&(1, 2)), "ones bucket: {buckets:?}");
        // 1000 lands in [512, 1024).
        assert!(buckets.contains(&(512, 1)), "512 bucket: {buckets:?}");
        assert!(dump_json_lines().contains("\"name\":\"test/metrics/hist\""));
    }

    #[test]
    fn bucket_floors_are_monotonic() {
        let floors: Vec<u64> = (0..HISTOGRAM_BUCKETS)
            .map(Histogram::bucket_floor)
            .collect();
        assert_eq!(floors[0], 0);
        assert_eq!(floors[1], 1);
        assert_eq!(floors[64], 1u64 << 63);
        assert!(floors.windows(2).all(|w| w[0] < w[1]));
    }
}
