//! Typed structured events for CORDOBA's interesting state transitions.
//!
//! Counters tell you *how often* something happened; structured events tell
//! you *that a specific transition happened, when, and with what payload*.
//! Each [`Event`] recorded via [`record`] increments a per-kind counter
//! (under the `events/` prefix) and, while tracing is enabled, lands in the
//! trace buffer as a zero-duration instant visible on the recording
//! thread's track in Perfetto.

use crate::metrics::Counter;
use crate::span::{current_tid, next_seq, ns_since_epoch, push_record, Record, RecordArgs};
use crate::tracing_enabled;
use std::time::Instant;

static FALLBACK_TIER_SWITCH: Counter = Counter::new("events/fallback_tier_switch");
static FALLBACK_EXHAUSTED: Counter = Counter::new("events/fallback_exhausted");
static SANITIZE_REJECTION: Counter = Counter::new("events/sanitize_rejection");
static QUARANTINE: Counter = Counter::new("events/quarantine");
static BETA_NOT_CONVERGED: Counter = Counter::new("events/beta_not_converged");
static WATCHDOG_TRUNCATION: Counter = Counter::new("events/event_sim_truncated");
static CACHE_HIT: Counter = Counter::new("events/embodied_cache_hit");
static CACHE_MISS: Counter = Counter::new("events/embodied_cache_miss");
static DEADLINE_EXCEEDED: Counter = Counter::new("events/supervision_deadline_exceeded");
static CANCELLED: Counter = Counter::new("events/supervision_cancelled");
static CHUNK_PANIC: Counter = Counter::new("events/supervision_chunk_panic");
static CHECKPOINT_WRITTEN: Counter = Counter::new("events/supervision_checkpoint_written");
static CHECKPOINT_RESTORED: Counter = Counter::new("events/supervision_checkpoint_restored");
static STORE_HIT: Counter = Counter::new("events/store_hit");
static STORE_MISS: Counter = Counter::new("events/store_miss");
static STORE_WRITE: Counter = Counter::new("events/store_write");

/// An interesting state transition somewhere in the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A `FallbackCi` query was answered below the primary tier; `tier` is
    /// the zero-based index of the serving tier.
    FallbackTierSwitch {
        /// Zero-based index of the tier that served the query.
        tier: u64,
    },
    /// A `FallbackCi` query that no tier could answer (served as zero).
    FallbackExhausted,
    /// `TraceCi::sanitize` rejected or repaired samples.
    SanitizeRejection {
        /// Samples dropped outright (non-finite timestamp/value, negative
        /// timestamp).
        dropped: u64,
        /// Samples repaired in place (clamped, deduplicated, reordered,
        /// clipped).
        repaired: u64,
    },
    /// A configuration was quarantined during resilient space evaluation.
    Quarantine,
    /// `BetaSweep::solve_transitions` exhausted its evaluation budget.
    BetaNotConverged {
        /// Objective evaluations spent before giving up.
        evaluations: u64,
    },
    /// The event-driven simulator's watchdog truncated a segment.
    WatchdogTruncation,
    /// An `EmbodiedCache` lookup was served from the cache.
    CacheHit,
    /// An `EmbodiedCache` lookup had to run the embodied-carbon model.
    CacheMiss,
    /// A supervised run stopped because its deadline budget was exhausted;
    /// `completed` is the number of work units finished before the stop.
    DeadlineExceeded {
        /// Work units completed before the deadline fired.
        completed: u64,
    },
    /// A supervised run observed a cooperative cancellation request.
    Cancelled {
        /// Work units completed before the cancellation was observed.
        completed: u64,
    },
    /// A parallel worker panicked inside a supervised map; the item was
    /// quarantined instead of aborting the process.
    ChunkPanic,
    /// A sweep checkpoint was serialized for later resumption.
    CheckpointWritten {
        /// Work units (e.g. sweep rows) captured as complete.
        completed: u64,
    },
    /// A sweep checkpoint was parsed back and its invariants verified.
    CheckpointRestored {
        /// Work units the restored checkpoint already covers.
        completed: u64,
    },
    /// A persistent-store lookup found a valid entry.
    StoreHit,
    /// A persistent-store lookup found nothing usable (absent, corrupt,
    /// truncated, or salted for a different code version).
    StoreMiss,
    /// A result was written behind into the persistent store.
    StoreWrite,
}

impl Event {
    /// The per-kind counter and trace payload for this event.
    fn dissect(&self) -> (&'static Counter, RecordArgs) {
        match *self {
            Self::FallbackTierSwitch { tier } => {
                (&FALLBACK_TIER_SWITCH, [Some(("tier", tier)), None])
            }
            Self::FallbackExhausted => (&FALLBACK_EXHAUSTED, [None, None]),
            Self::SanitizeRejection { dropped, repaired } => (
                &SANITIZE_REJECTION,
                [Some(("dropped", dropped)), Some(("repaired", repaired))],
            ),
            Self::Quarantine => (&QUARANTINE, [None, None]),
            Self::BetaNotConverged { evaluations } => (
                &BETA_NOT_CONVERGED,
                [Some(("evaluations", evaluations)), None],
            ),
            Self::WatchdogTruncation => (&WATCHDOG_TRUNCATION, [None, None]),
            Self::CacheHit => (&CACHE_HIT, [None, None]),
            Self::CacheMiss => (&CACHE_MISS, [None, None]),
            Self::DeadlineExceeded { completed } => {
                (&DEADLINE_EXCEEDED, [Some(("completed", completed)), None])
            }
            Self::Cancelled { completed } => (&CANCELLED, [Some(("completed", completed)), None]),
            Self::ChunkPanic => (&CHUNK_PANIC, [None, None]),
            Self::CheckpointWritten { completed } => {
                (&CHECKPOINT_WRITTEN, [Some(("completed", completed)), None])
            }
            Self::CheckpointRestored { completed } => {
                (&CHECKPOINT_RESTORED, [Some(("completed", completed)), None])
            }
            Self::StoreHit => (&STORE_HIT, [None, None]),
            Self::StoreMiss => (&STORE_MISS, [None, None]),
            Self::StoreWrite => (&STORE_WRITE, [None, None]),
        }
    }

    /// The registry/trace name for this event kind.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.dissect().0.name()
    }
}

/// Records a structured event: bumps its `events/*` counter (metrics layer)
/// and, while tracing is enabled, appends an instant to the trace buffer.
///
/// ```
/// use cordoba_obs::Event;
///
/// cordoba_obs::record(&Event::FallbackTierSwitch { tier: 2 });
/// ```
pub fn record(event: &Event) {
    let (counter, args) = event.dissect();
    counter.incr();
    if tracing_enabled() {
        push_record(Record::Instant {
            name: counter.name(),
            args,
            tid: current_tid(),
            seq: next_seq(),
            ts_ns: ns_since_epoch(Instant::now()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_bump_their_counters_and_trace() {
        let _guard = crate::test_lock();
        crate::set_metrics_enabled(true);
        crate::set_tracing_enabled(true);
        crate::clear_trace();
        let hits_before = CACHE_HIT.value();
        let beta_before = BETA_NOT_CONVERGED.value();
        record(&Event::CacheHit);
        record(&Event::BetaNotConverged { evaluations: 17 });
        assert_eq!(CACHE_HIT.value(), hits_before + 1);
        assert_eq!(BETA_NOT_CONVERGED.value(), beta_before + 1);
        assert_eq!(crate::span::buffered_records(), 2);
        crate::set_tracing_enabled(false);
        crate::clear_trace();
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(
            Event::FallbackTierSwitch { tier: 1 }.name(),
            "events/fallback_tier_switch"
        );
        assert_eq!(
            Event::SanitizeRejection {
                dropped: 1,
                repaired: 2
            }
            .name(),
            "events/sanitize_rejection"
        );
        assert_eq!(
            Event::WatchdogTruncation.name(),
            "events/event_sim_truncated"
        );
        assert_eq!(
            Event::DeadlineExceeded { completed: 3 }.name(),
            "events/supervision_deadline_exceeded"
        );
        assert_eq!(
            Event::Cancelled { completed: 0 }.name(),
            "events/supervision_cancelled"
        );
        assert_eq!(Event::ChunkPanic.name(), "events/supervision_chunk_panic");
        assert_eq!(
            Event::CheckpointWritten { completed: 7 }.name(),
            "events/supervision_checkpoint_written"
        );
        assert_eq!(
            Event::CheckpointRestored { completed: 7 }.name(),
            "events/supervision_checkpoint_restored"
        );
        assert_eq!(Event::StoreHit.name(), "events/store_hit");
        assert_eq!(Event::StoreMiss.name(), "events/store_miss");
        assert_eq!(Event::StoreWrite.name(), "events/store_write");
    }
}
