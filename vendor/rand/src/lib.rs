//! Offline stub of `rand` 0.8.
//!
//! Implements the subset of the `rand` API the workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::{shuffle, choose}` — on top of a
//! deterministic xoshiro256++ generator seeded via SplitMix64. Statistical
//! quality is more than sufficient for the simulator's synthetic traces and
//! seeded tests; cryptographic use is out of scope (as it also is for the
//! real `StdRng` contract the workspace relies on: determinism per seed).

use core::ops::{Range, RangeInclusive};

/// Core trait producing raw random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high bits of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the stub's version of sampling from the `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleStandard for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types supporting uniform sampling from a sub-range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`; `hi` is exclusive.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`; `hi` is inclusive.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + off) as $ty
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                ) -> Self {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + off) as $ty
                }
            }
        )*
    };
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "gen_range: empty range");
                    let unit = <$ty as SampleStandard>::sample(rng);
                    lo + (hi - lo) * unit
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                ) -> Self {
                    assert!(lo <= hi, "gen_range: empty range");
                    let unit = <$ty as SampleStandard>::sample(rng);
                    lo + (hi - lo) * unit
                }
            }
        )*
    };
}

impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard (full-range / unit-interval)
    /// distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        <f64 as SampleStandard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (stub: only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (stub of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let n = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&n));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
