//! Offline stub of `criterion` 0.5.
//!
//! A minimal wall-clock micro-benchmark harness exposing the subset of the
//! criterion API the workspace's benches use (`Criterion`, `Bencher`,
//! benchmark groups, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros). It reports mean/min/max per benchmark on stdout; statistical
//! analysis, plotting, and baseline comparison require the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total sampling budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark under this configuration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.clone(),
            report: None,
        };
        f(&mut bencher);
        bencher.print(&id.into());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Report {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    config: Criterion,
    report: Option<Report>,
}

impl Bencher {
    /// Times repeated calls of `f`, recording per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the measurement budget into samples of >= 1 iteration each.
        let samples = self.config.sample_size;
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut mean_acc = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns: f64 = 0.0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            mean_acc += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        self.report = Some(Report {
            mean_ns: mean_acc / samples as f64,
            min_ns,
            max_ns,
            iters: iters_per_sample * samples as u64,
        });
    }

    fn print(&self, id: &str) {
        match &self.report {
            Some(r) => println!(
                "{id:<48} mean {:>12} min {:>12} max {:>12} ({} iters)",
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.iters
            ),
            None => println!("{id:<48} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named collection of related benchmarks sharing a `Criterion` config.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        self.criterion.bench_function(full, |b| f(b, input));
        self
    }

    /// Ends the group (stub: nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
