//! Offline stub of `proptest`.
//!
//! Provides the `proptest!`, `prop_assert!`, `prop_assert_eq!`, and
//! `prop_assume!` macros plus the small strategy algebra the workspace's
//! property tests use: numeric ranges, tuples, `prop::collection::vec`, and
//! `prop::sample::select`. Each `proptest!` test runs a fixed number of
//! deterministic cases (seeded from the test name), so failures are
//! reproducible; shrinking and persistence (`.proptest-regressions`) are not
//! implemented — regression files are simply ignored.

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Number of cases each `proptest!` test executes.
    pub const CASES: usize = 96;

    /// Maximum `prop_assume!` rejections before the test aborts.
    pub const MAX_REJECTS: usize = 4096;

    /// Outcome of a single property-test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert!` failed: the property does not hold.
        Fail(String),
        /// A `prop_assume!` rejected the inputs: re-draw and retry.
        Reject(String),
    }

    /// Deterministic RNG for strategies (xoshiro via the vendored `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from the test name so every test draws a
        /// distinct but reproducible stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }
                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident / $idx:tt),+)),* $(,)?) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.sample(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
    );

    /// Strategy that always yields a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `prop::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            Self { lo, hi: hi + 1 }
        }
    }

    /// Strategy producing a `Vec` of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`] with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::sample` — strategies choosing among fixed alternatives.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::seq::SliceRandom;

    /// Strategy drawing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Builds a [`Select`] over `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "prop::sample::select: empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.choose(rng).expect("select is non-empty").clone()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `fn name()` that runs [`test_runner::CASES`] deterministic
/// cases, re-drawing on `prop_assume!` rejections.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted = 0usize;
                let mut rejected = 0usize;
                while accepted < $crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < $crate::test_runner::MAX_REJECTS,
                                "proptest: too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest case failed in {}: {}", stringify!($name), msg),
                    }
                }
            }
        )*
    };
}

/// Asserts a property inside a `proptest!` body (fails the case, with the
/// condition text or a formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` specialization for equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// `prop_assert!` specialization for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (inputs re-drawn) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
