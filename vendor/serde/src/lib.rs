//! Offline stub of `serde`.
//!
//! The build environment has no network access to crates.io, so this crate
//! stands in for the real `serde`: it defines `Serialize` and `Deserialize`
//! as *marker traits* (no methods) and re-exports the sibling stub derive
//! macros. Code that derives the traits and asserts the bounds at compile
//! time works unchanged; code that actually serializes to a wire format
//! would need the real crate (none of the workspace does — no format crate
//! is vendored).
//!
//! Swapping the real `serde` back in is a one-line change in the root
//! `Cargo.toml` (`[workspace.dependencies]`).

/// Marker stand-in for `serde::Serialize` (no methods in the offline stub).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods in the offline stub).
pub trait Deserialize<'de>: Sized {}

/// Stand-in for the `serde::de` module.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use super::Serialize;
}

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    ()
);

impl Serialize for str {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize> Serialize for [T] {}

macro_rules! impl_tuple_markers {
    ($(($($name:ident),+)),* $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
        )*
    };
}

impl_tuple_markers!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
