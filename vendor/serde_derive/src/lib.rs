//! Offline stub of `serde_derive`.
//!
//! The real `serde_derive` generates full (de)serialization logic. This
//! vendored stand-in only emits empty impls of the marker traits exposed by
//! the sibling `serde` stub, which is enough for code that derives
//! `Serialize`/`Deserialize` and asserts the bounds at compile time, but
//! never actually encodes to a wire format (no format crate is vendored).
//!
//! The item parser is hand-rolled on `proc_macro::TokenStream` (no `syn`
//! available offline) and supports structs/enums/unions with lifetime, type,
//! and const generic parameters, including bounds and defaults.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A single generic parameter split into its impl-side declaration and its
/// type-argument form (`const N: usize` vs `N`, `'a: 'b` vs `'a`, ...).
struct Param {
    decl: String,
    arg: String,
}

/// Extracts `(name, params)` from a `struct`/`enum`/`union` item.
fn parse_item(input: TokenStream) -> (String, Vec<Param>) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found `{other}`"),
    };
    i += 1;
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 1;
            let mut generic = Vec::new();
            i += 1;
            while i < tokens.len() && depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                generic.push(tokens[i].clone());
                i += 1;
            }
            params = split_params(&generic);
        }
    }
    (name, params)
}

/// Splits the token list inside `<...>` on top-level commas and classifies
/// each parameter.
fn split_params(tokens: &[TokenTree]) -> Vec<Param> {
    let mut groups: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                groups.push(Vec::new());
                continue;
            }
            _ => {}
        }
        groups.last_mut().expect("non-empty").push(t.clone());
    }
    groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| classify_param(g))
        .collect()
}

fn classify_param(tokens: &[TokenTree]) -> Param {
    match &tokens[0] {
        // Lifetime parameter: `'a` (optionally with bounds, which we drop).
        TokenTree::Punct(p) if p.as_char() == '\'' => {
            let life = format!("'{}", tokens[1]);
            Param {
                decl: life.clone(),
                arg: life,
            }
        }
        // Const parameter: keep `const N: Ty`, drop any default.
        TokenTree::Ident(id) if id.to_string() == "const" => {
            let name = tokens[1].to_string();
            let mut decl = String::from("const ");
            for t in &tokens[1..] {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == '=') {
                    break;
                }
                decl.push_str(&t.to_string());
                decl.push(' ');
            }
            Param {
                decl: decl.trim_end().to_string(),
                arg: name,
            }
        }
        // Type parameter: keep just the name, drop bounds and defaults.
        TokenTree::Ident(id) => {
            let name = id.to_string();
            Param {
                decl: name.clone(),
                arg: name,
            }
        }
        other => panic!("serde stub derive: unsupported generic parameter `{other}`"),
    }
}

fn impl_header(extra: Option<&str>, params: &[Param]) -> (String, String) {
    let mut decls: Vec<String> = Vec::new();
    if let Some(e) = extra {
        decls.push(e.to_string());
    }
    decls.extend(params.iter().map(|p| p.decl.clone()));
    let impl_generics = if decls.is_empty() {
        String::new()
    } else {
        format!("<{}>", decls.join(", "))
    };
    let args: Vec<String> = params.iter().map(|p| p.arg.clone()).collect();
    let ty_generics = if args.is_empty() {
        String::new()
    } else {
        format!("<{}>", args.join(", "))
    };
    (impl_generics, ty_generics)
}

/// Derives an empty `serde::Serialize` marker impl. `#[serde(...)]`
/// attributes are accepted and ignored.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_item(input);
    let (impl_generics, ty_generics) = impl_header(None, &params);
    format!("impl {impl_generics} ::serde::Serialize for {name} {ty_generics} {{}}")
        .parse()
        .expect("serde stub derive: generated invalid Serialize impl")
}

/// Derives an empty `serde::Deserialize` marker impl. `#[serde(...)]`
/// attributes are accepted and ignored.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_item(input);
    let (impl_generics, ty_generics) = impl_header(Some("'serde_de"), &params);
    format!("impl {impl_generics} ::serde::Deserialize<'serde_de> for {name} {ty_generics} {{}}")
        .parse()
        .expect("serde stub derive: generated invalid Deserialize impl")
}
