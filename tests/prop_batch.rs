//! Equivalence contract of the batch (SoA) evaluation pipeline: every
//! batch entry point must return results *bit-identical* to the retained
//! scalar path (`simulate` / `full_cost_table` / `accel_design_point`),
//! including quarantine ordering under failures and supervised
//! interrupt/resume, at every thread count.
//!
//! Like `prop_parallel`, these are hand-rolled seeded generators driving
//! explicit case loops through `StdRng` streams.

use cordoba::prelude::*;
use cordoba_accel::config::{AcceleratorConfig, MemoryIntegration};
use cordoba_accel::params::TechTuning;
use cordoba_accel::sim::{
    full_cost_table, full_cost_table_batch, simulate, simulate_batch, ConfigBatch, KernelSim,
    KernelSlab,
};
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_carbon::units::Bytes;
use cordoba_par::Supervisor;
use cordoba_workloads::kernel::KernelId;
use cordoba_workloads::task::Task;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random index in `0..n`.
fn index(rng: &mut StdRng, n: usize) -> usize {
    ((rng.gen::<f64>() * n as f64) as usize).min(n - 1)
}

/// A random order-preserving, non-empty subset of the 121-config space.
fn random_configs(rng: &mut StdRng) -> Vec<AcceleratorConfig> {
    let space = design_space();
    let keep_probability = 0.1 + 0.9 * rng.gen::<f64>();
    let mut subset: Vec<AcceleratorConfig> = space
        .iter()
        .filter(|_| rng.gen::<f64>() < keep_probability)
        .cloned()
        .collect();
    if subset.is_empty() {
        subset.push(space[index(rng, space.len())].clone());
    }
    subset
}

fn random_task(rng: &mut StdRng) -> Task {
    match index(rng, 4) {
        0 => Task::all_kernels(),
        1 => Task::xr_10_kernels(),
        2 => Task::xr_5_kernels(),
        _ => Task::ai_5_kernels(),
    }
}

/// A configuration whose tuning is poisoned so characterization fails.
fn poisoned_config(name: &str) -> AcceleratorConfig {
    let mut tuning = TechTuning::n7();
    tuning.mac_unit_area_mm2 = f64::NAN;
    AcceleratorConfig::with_tuning(
        name,
        16,
        Bytes::from_mebibytes(8.0),
        MemoryIntegration::OnDie,
        tuning,
    )
    .unwrap()
}

/// Every `f64` field of a [`KernelSim`], as raw bits.
fn sim_bits(sim: &KernelSim) -> [u64; 5] {
    [
        sim.latency.value().to_bits(),
        sim.dynamic_energy.value().to_bits(),
        sim.dram_traffic.value().to_bits(),
        sim.compute_time.value().to_bits(),
        sim.memory_time.value().to_bits(),
    ]
}

#[test]
fn batch_simulator_matches_scalar_simulate_bit_for_bit() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xBA7C ^ seed);
        let configs = random_configs(&mut rng);
        // Alternate between the full 15-kernel slab and a task-shaped one.
        let slab = if rng.gen::<f64>() < 0.5 {
            KernelSlab::full()
        } else {
            KernelSlab::new(random_task(&mut rng).kernels())
        };
        let sims = simulate_batch(&configs, &slab);
        assert_eq!(sims.len(), configs.len() * slab.len(), "seed {seed}");
        for (c, config) in configs.iter().enumerate() {
            for (k, &id) in slab.ids().iter().enumerate() {
                let scalar = simulate(config, &id.descriptor());
                let batch = &sims[c * slab.len() + k];
                assert_eq!(batch.kernel, id, "seed {seed}, config {c}, kernel {k}");
                assert_eq!(
                    sim_bits(batch),
                    sim_bits(&scalar),
                    "seed {seed}, config {}, kernel {id:?}",
                    config.name()
                );
            }
        }
    }
}

#[test]
fn batch_cost_tables_match_scalar_tables() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0xC057 ^ seed);
        let configs = random_configs(&mut rng);
        let batch = full_cost_table_batch(&configs);
        assert_eq!(batch.len(), configs.len(), "seed {seed}");
        for (c, config) in configs.iter().enumerate() {
            assert_eq!(
                batch[c],
                full_cost_table(config),
                "seed {seed}, config {}",
                config.name()
            );
        }
    }
}

#[test]
fn batch_task_costs_match_scalar_cost_table_queries() {
    let tasks = [
        Task::all_kernels(),
        Task::xr_10_kernels(),
        Task::xr_5_kernels(),
        Task::ai_5_kernels(),
    ];
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0x7A5C ^ seed);
        let configs = random_configs(&mut rng);
        let batch = ConfigBatch::new(&configs);
        for task in &tasks {
            let slab = KernelSlab::new(task.kernels());
            let plan = cordoba_accel::sim::TaskPlan::new(task, &slab).unwrap();
            for (c, config) in configs.iter().enumerate() {
                let costs = batch.slab_costs(c, &slab);
                let (delay, energy) = batch.task_cost(c, &costs, &plan);
                let table = full_cost_table(config);
                assert_eq!(
                    delay.value().to_bits(),
                    table.task_delay(task).unwrap().value().to_bits(),
                    "seed {seed}, config {}",
                    config.name()
                );
                assert_eq!(
                    energy.value().to_bits(),
                    table.task_energy(task).unwrap().value().to_bits(),
                    "seed {seed}, config {}",
                    config.name()
                );
            }
        }
    }
}

#[test]
fn evaluate_space_matches_the_retained_scalar_path() {
    let model = EmbodiedModel::default();
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(0x5CA1 ^ seed);
        let configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        // The reference is the pre-batch scalar pipeline, config by config.
        let scalar: Vec<DesignPoint> = configs
            .iter()
            .map(|c| accel_design_point(c, &task, &model).unwrap())
            .collect();
        let auto = evaluate_space(&configs, &task, &model).unwrap();
        assert_eq!(scalar, auto, "seed {seed}, auto threads");
        for threads in [1, 2, 4, 16] {
            let batch = evaluate_space_with_threads(&configs, &task, &model, threads).unwrap();
            assert_eq!(scalar, batch, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn evaluate_space_multi_matches_per_task_scalar_runs() {
    let model = EmbodiedModel::default();
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0x3417 ^ seed);
        let configs = random_configs(&mut rng);
        let tasks: Vec<Task> = (0..1 + index(&mut rng, 4))
            .map(|_| random_task(&mut rng))
            .collect();
        let multi = evaluate_space_multi(&configs, &tasks, &model).unwrap();
        assert_eq!(multi.len(), tasks.len(), "seed {seed}");
        for (t, task) in tasks.iter().enumerate() {
            let scalar: Vec<DesignPoint> = configs
                .iter()
                .map(|c| accel_design_point(c, task, &model).unwrap())
                .collect();
            assert_eq!(scalar, multi[t], "seed {seed}, task {t}");
        }
    }
}

#[test]
fn resilient_quarantine_matches_the_scalar_path_under_failures() {
    let model = EmbodiedModel::default();
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0x9A4F ^ seed);
        let mut configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        let poisons = 1 + index(&mut rng, 4);
        for p in 0..poisons {
            let at = index(&mut rng, configs.len() + 1);
            configs.insert(at, poisoned_config(&format!("poison{p}")));
        }
        // Scalar reference: per-config calls, partitioned in input order.
        let mut scalar_points = Vec::new();
        let mut scalar_failures = Vec::new();
        for config in &configs {
            match accel_design_point(config, &task, &model) {
                Ok(point) => scalar_points.push(point),
                Err(err) => scalar_failures.push(format!("{}: {err}", config.name())),
            }
        }
        for threads in [1, 2, 16] {
            let batch = evaluate_space_resilient_with_threads(&configs, &task, &model, threads);
            assert_eq!(
                scalar_points, batch.points,
                "seed {seed}, {threads} threads"
            );
            // Failure payloads carry NaN (self-unequal), so compare the
            // rendered reports instead of the values.
            let rendered: Vec<String> = batch
                .failures
                .iter()
                .map(|f| format!("{}: {}", f.name, f.error))
                .collect();
            assert_eq!(scalar_failures, rendered, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn supervised_interrupt_and_resume_match_an_uninterrupted_run() {
    let model = EmbodiedModel::default();
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0x15FE ^ seed);
        let mut configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        for p in 0..1 + index(&mut rng, 3) {
            let at = index(&mut rng, configs.len() + 1);
            configs.insert(at, poisoned_config(&format!("poison{p}")));
        }
        let direct = evaluate_space_resilient_with_threads(&configs, &task, &model, 1);
        let trip = index(&mut rng, configs.len() + 1) as u64;
        let threads = [1, 2, 16][index(&mut rng, 3)];
        let sup = Supervisor::tripping_after(trip);
        let mut eval =
            evaluate_space_supervised_with_threads(&configs, &task, &model, &sup, threads);
        if !eval.is_complete() {
            eval.resume_with_threads(&configs, &task, &model, &Supervisor::unbounded(), threads)
                .unwrap();
        }
        assert!(eval.is_complete(), "seed {seed}");
        let merged = eval.to_resilient().unwrap();
        assert_eq!(direct.points, merged.points, "seed {seed}");
        let render = |r: &ResilientEval| -> Vec<String> {
            r.failures.iter().map(ToString::to_string).collect()
        };
        assert_eq!(render(&direct), render(&merged), "seed {seed}");
    }
}

#[test]
fn op_time_sweep_rows_match_manual_scalar_rows() {
    let model = EmbodiedModel::default();
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0x0775 ^ seed);
        let configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        let points = evaluate_space_with_threads(&configs, &task, &model, 1).unwrap();
        let counts: Vec<f64> = (0..1 + index(&mut rng, 24))
            .map(|_| 10f64.powf(1.0 + 8.0 * rng.gen::<f64>()))
            .collect();
        // Manual scalar reference for every row of the tCDP matrix.
        let manual: Vec<Vec<f64>> = counts
            .iter()
            .map(|&n| {
                let ctx = OperationalContext::new(n, grids::US_AVERAGE).unwrap();
                points.iter().map(|p| p.tcdp(&ctx).value()).collect()
            })
            .collect();
        for threads in [1, 2, 16] {
            let sweep = OpTimeSweep::with_threads(
                points.clone(),
                counts.clone(),
                grids::US_AVERAGE,
                threads,
            )
            .unwrap();
            assert_eq!(
                sweep.tcdp_matrix().len(),
                points.len() * counts.len(),
                "seed {seed}, {threads} threads"
            );
            for (n, row) in manual.iter().enumerate() {
                let bits = |xs: &[f64]| -> Vec<u64> { xs.iter().map(|x| x.to_bits()).collect() };
                assert_eq!(
                    bits(row),
                    bits(sweep.row(n)),
                    "seed {seed}, {threads} threads, row {n}"
                );
                for (p, &expected) in row.iter().enumerate() {
                    assert_eq!(
                        expected.to_bits(),
                        sweep.tcdp_at(n, p).to_bits(),
                        "seed {seed}, {threads} threads, row {n}, point {p}"
                    );
                }
            }
        }
    }
}

#[test]
fn slab_dedup_keeps_batch_equal_to_scalar_on_repeated_kernels() {
    // A slab built over a kernel list with duplicates must still price every
    // kernel exactly once and identically to the scalar simulator.
    let configs = design_space();
    let slab = KernelSlab::new(KernelId::ALL.iter().chain(KernelId::ALL.iter()).copied());
    assert_eq!(slab.len(), KernelId::ALL.len());
    let sims = simulate_batch(&configs[..8], &slab);
    for (c, config) in configs[..8].iter().enumerate() {
        for (k, &id) in slab.ids().iter().enumerate() {
            let scalar = simulate(config, &id.descriptor());
            assert_eq!(
                sim_bits(&sims[c * slab.len() + k]),
                sim_bits(&scalar),
                "config {}, kernel {id:?}",
                config.name()
            );
        }
    }
}
