//! Integration: the framework extensions the paper's conclusion calls for —
//! memory/storage embodied models, lifetime workload mixes, two-factor
//! elimination (unknown `CI_fab` *and* `CI_use`), and carbon-aware DVFS.

use cordoba::prelude::*;
use cordoba_accel::space::{config_by_name, design_space};
use cordoba_carbon::prelude::*;
use cordoba_tech::dvfs::DvfsCurve;
use cordoba_tech::mosfet::GateModel;
use cordoba_workloads::task::Task;

#[test]
fn headset_bom_includes_memory_carbon() {
    // A Quest-2-class BOM: SoC + 8 GB LPDDR + 256 GB flash.
    let model = EmbodiedModel::default();
    let mut bom = SystemBom::new("headset");
    bom.add_die(Die::new("xr2", SquareCentimeters::new(2.25), ProcessNode::N7).unwrap());
    bom.add_memory(MemoryDevice::new(MemoryKind::Dram, 8.0).unwrap());
    bom.add_memory(MemoryDevice::new(MemoryKind::Nand, 256.0).unwrap());
    let soc_only = model.packaged_die_carbon(&bom.dice()[0]);
    let total = bom.embodied_carbon(&model);
    assert!(total > soc_only);
    // Memory is a first-class share of the footprint, per ACT.
    let share = bom.memory_share(&model);
    assert!((0.3..0.9).contains(&share), "memory share {share}");
}

#[test]
fn lifetime_mix_sweep_still_eliminates_most_of_the_space() {
    let mix = LifetimeMix::new(vec![
        (Task::ai_5_kernels(), 0.6),
        (Task::xr_5_kernels(), 0.4),
    ])
    .unwrap();
    let points = mix
        .evaluate_space(&design_space(), &EmbodiedModel::default())
        .unwrap();
    let sweep = OpTimeSweep::new(points, log_sweep(4, 11, 4), grids::US_AVERAGE).unwrap();
    assert!(sweep.elimination_fraction() > 0.9);
}

#[test]
fn mix_optimum_sits_between_member_optima_in_sram() {
    let configs = design_space();
    let model = EmbodiedModel::default();
    let ctx = OperationalContext::us_grid(1e8);
    let sram_of = |task_mix: &LifetimeMix| {
        let pts = task_mix.evaluate_space(&configs, &model).unwrap();
        let best = argmin(&pts, MetricKind::Tcdp, &ctx).unwrap();
        config_by_name(&best.name).unwrap().sram().to_mebibytes()
    };
    let ai = sram_of(&LifetimeMix::single(Task::ai_5_kernels()));
    let xr = sram_of(&LifetimeMix::single(Task::xr_5_kernels()));
    let blend = sram_of(
        &LifetimeMix::new(vec![
            (Task::ai_5_kernels(), 0.5),
            (Task::xr_5_kernels(), 0.5),
        ])
        .unwrap(),
    );
    assert!(ai <= blend && blend <= xr, "{ai} <= {blend} <= {xr}");
}

#[test]
fn two_factor_elimination_over_the_stacking_study() {
    // Eliminate stacking configs when neither CI_use nor CI_fab is known.
    let model = EmbodiedModel::default();
    let kernel = cordoba_workloads::kernel::KernelId::Sr512.descriptor();
    let candidates: Vec<(DesignPoint, cordoba_carbon::embodied::EmbodiedBreakdown)> =
        cordoba_accel::stacking::study_configs()
            .iter()
            .map(|cfg| {
                let sim = cordoba_accel::sim::simulate(cfg, &kernel);
                let energy = sim.dynamic_energy + cfg.leakage_power() * sim.latency;
                let point = DesignPoint::new(
                    cfg.name(),
                    sim.latency,
                    energy,
                    cfg.embodied_carbon(&model).unwrap(),
                    cfg.total_area(),
                )
                .unwrap();
                (point, cfg.embodied_breakdown(&model).unwrap())
            })
            .collect();

    let two = TwoFactorSweep::run(&candidates);
    // The 2-factor survivors must include the 1-factor survivors (the
    // known-CI_fab case is one slice of the unknown-CI_fab problem).
    let one = BetaSweep::run(
        &candidates
            .iter()
            .map(|(p, _)| p.clone())
            .collect::<Vec<_>>(),
    );
    for name in one.surviving_names() {
        assert!(
            two.surviving_names().contains(&name),
            "1-factor survivor {name} missing from 2-factor survivors"
        );
    }
    // And every concrete intensity pair picks a 2-factor survivor.
    for ci_fab in [50.0, 380.0, 820.0] {
        for beta in [0.0, 1e2, 1e6] {
            let idx = two.optimal_for(CarbonIntensity::new(ci_fab), beta).unwrap();
            assert!(two
                .surviving_names()
                .contains(&two.points[idx].name.as_str()));
        }
    }
    // Something must still be eliminated.
    assert!(two.elimination_fraction() > 0.0);
}

#[test]
fn breakdown_matches_combined_embodied_for_every_config() {
    let model = EmbodiedModel::default();
    for cfg in cordoba_accel::stacking::study_configs() {
        let combined = cfg.embodied_carbon(&model).unwrap();
        let split = cfg.embodied_breakdown(&model).unwrap();
        let reassembled = split.total(model.ci_fab());
        assert!(
            (combined.value() - reassembled.value()).abs() < 1e-9 * combined.value(),
            "{}",
            cfg.name()
        );
    }
}

#[test]
fn carbon_aware_dvfs_tracks_operational_time() {
    let curve = DvfsCurve::new(
        GateModel::default(),
        Hertz::from_gigahertz(1.5),
        Joules::from_nanojoules(1.0),
        Watts::new(0.2),
    );
    let embodied = GramsCo2e::new(2_000.0);
    let pick = |tasks: f64| {
        curve
            .tcdp_optimal_point(5e8, embodied, tasks, grids::US_AVERAGE, 0.5, 1.15, 48)
            .unwrap()
            .v_dd
    };
    // Monotone non-increasing optimal voltage as lifetime work grows.
    let mut prev = f64::INFINITY;
    for tasks in [1.0, 1e4, 1e6, 1e8, 1e10] {
        let v = pick(tasks);
        assert!(v <= prev + 1e-9, "voltage should not rise with lifetime");
        prev = v;
    }
}

#[test]
fn layered_and_aggregate_simulators_rank_configs_alike() {
    // The per-layer path is finer-grained, but across the design space it
    // must tell the same story as the calibrated aggregate path: config
    // rankings for a task correlate strongly.
    use cordoba::stats::spearman;
    use cordoba_accel::layered_sim::layered_cost_table;
    use cordoba_accel::sim::full_cost_table;
    let task = Task::xr_10_kernels();
    let configs: Vec<_> = [
        "a1", "a23", "a37", "a48", "a60", "a72", "a84", "a96", "a108",
    ]
    .iter()
    .map(|n| config_by_name(n).unwrap())
    .collect();
    let layered: Vec<f64> = configs
        .iter()
        .map(|c| layered_cost_table(c).task_delay(&task).unwrap().value())
        .collect();
    let aggregate: Vec<f64> = configs
        .iter()
        .map(|c| full_cost_table(c).task_delay(&task).unwrap().value())
        .collect();
    let rho = spearman(&layered, &aggregate).unwrap();
    assert!(rho > 0.8, "rank correlation {rho}");
}

#[test]
fn layered_dse_reproduces_the_elimination_story() {
    // Drive the op-time DSE entirely through the per-layer simulator.
    use cordoba_accel::layered_sim::layered_cost_table;
    let model = EmbodiedModel::default();
    let task = Task::ai_5_kernels();
    let points: Vec<DesignPoint> = design_space()
        .iter()
        .map(|cfg| {
            let table = layered_cost_table(cfg);
            DesignPoint::new(
                cfg.name(),
                table.task_delay(&task).unwrap(),
                table.task_energy(&task).unwrap(),
                cfg.embodied_carbon(&model).unwrap(),
                cfg.total_area(),
            )
            .unwrap()
        })
        .collect();
    let sweep = OpTimeSweep::new(points, log_sweep(4, 11, 2), grids::US_AVERAGE).unwrap();
    assert!(sweep.elimination_fraction() > 0.9);
    // Optimum still grows with operational time.
    let first = &sweep.points[sweep.optimal_at(0)];
    let last = &sweep.points[sweep.optimal_at(sweep.task_counts.len() - 1)];
    assert!(last.area >= first.area);
}

#[test]
fn wafer_die_placement_refines_embodied_for_accelerators() {
    let model = EmbodiedModel::default();
    let wafer = Wafer::new_300mm();
    let cfg = config_by_name("a84").unwrap();
    let die = Die::new("a84", cfg.logic_die_area(), ProcessNode::N7).unwrap();
    let by_area = model.die_carbon(&die);
    let by_wafer = model.die_carbon_via_wafer(&die, &wafer).unwrap();
    assert!(by_wafer > by_area);
    assert!(by_wafer.value() / by_area.value() < 1.2);
}
