//! Data-structure hygiene tests across all crates: every public data type
//! must be cloneable with equality round trips, have a non-empty `Debug`
//! representation (C-DEBUG-NONEMPTY), and implement Serde's
//! `Serialize`/`Deserialize` (C-SERDE) so downstream crates can persist
//! results in the format of their choice (no serialization format crate is
//! vendored offline, so the Serde bound is asserted at compile time).

use cordoba::prelude::*;
use cordoba_accel::prelude::*;
use cordoba_carbon::prelude::*;
use cordoba_soc::prelude::*;
use cordoba_workloads::prelude::*;

fn assert_clone_eq<T: Clone + PartialEq + std::fmt::Debug>(value: &T) {
    let copy = value.clone();
    assert_eq!(&copy, value);
    let debug = format!("{value:?}");
    assert!(
        !debug.is_empty(),
        "Debug must be non-empty (C-DEBUG-NONEMPTY)"
    );
}

#[test]
fn core_types_clone_and_compare() {
    let point = DesignPoint::new(
        "x",
        Seconds::new(1.0),
        Joules::new(2.0),
        GramsCo2e::new(3.0),
        SquareCentimeters::new(4.0),
    )
    .unwrap();
    assert_clone_eq(&point);
    assert_clone_eq(&OperationalContext::us_grid(10.0));
    assert_clone_eq(&Constraints::none().with_max_delay(Seconds::new(1.0)));
    assert_clone_eq(&Point2::new("p", 1.0, 2.0));
    assert_clone_eq(&PointK::new("k", vec![1.0, 2.0, 3.0]));
    assert_clone_eq(&BetaSweep::run(std::slice::from_ref(&point)));
    assert_clone_eq(&Scenario::default());
}

#[test]
fn carbon_types_clone_and_compare() {
    assert_clone_eq(&Die::new("d", SquareCentimeters::new(1.0), ProcessNode::N7).unwrap());
    assert_clone_eq(&EmbodiedModel::default());
    assert_clone_eq(&YieldModel::Murphy);
    assert_clone_eq(&Wafer::new_300mm());
    assert_clone_eq(&UsageProfile::from_daily_hours(5.0, 2.0).unwrap());
    assert_clone_eq(&ConstantCi::new(grids::US_AVERAGE));
    assert_clone_eq(&TrendCi::new(grids::US_AVERAGE, 0.05).unwrap());
    assert_clone_eq(&MemoryDevice::new(MemoryKind::Dram, 8.0).unwrap());
    let mut bom = SystemBom::new("sys");
    bom.add_memory(MemoryDevice::new(MemoryKind::Nand, 64.0).unwrap());
    assert_clone_eq(&bom);
    assert_clone_eq(
        &TraceCi::new(vec![
            (Seconds::new(0.0), CarbonIntensity::new(1.0)),
            (Seconds::new(1.0), CarbonIntensity::new(2.0)),
        ])
        .unwrap(),
    );
}

#[test]
fn workload_and_accel_types_clone_and_compare() {
    assert_clone_eq(&Task::xr_10_kernels());
    assert_clone_eq(&KernelId::Sr512.descriptor());
    assert_clone_eq(&LayeredKernel::for_kernel(KernelId::UNet));
    assert_clone_eq(&config_by_name("a48").unwrap());
    assert_clone_eq(&TechTuning::n7());
    let cfg = config_by_name("a48").unwrap();
    assert_clone_eq(&simulate(&cfg, &KernelId::ResNet50.descriptor()));
    assert_clone_eq(&simulate_layered(
        &cfg,
        &LayeredKernel::for_kernel(KernelId::ResNet50),
    ));
    assert_clone_eq(&full_cost_table(&cfg));
}

#[test]
fn soc_types_clone_and_compare() {
    assert_clone_eq(&SocConfig::quest2());
    assert_clone_eq(&VrApp::m1());
    assert_clone_eq(&ActivityTrace::deterministic(&VrApp::b1()));
    assert_clone_eq(&schedule_app(&VrApp::m1(), &SocConfig::quest2()));
    let rows = sweep(&VrApp::m1(), &Deployment::default()).unwrap();
    assert_clone_eq(&rows[0]);
}

#[test]
fn serde_serialize_is_implemented_for_key_types() {
    // Compile-time assertion that Serialize/Deserialize bounds hold for
    // data-structure types (C-SERDE); a downstream crate can pick any
    // format.
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<DesignPoint>();
    assert_serde::<OperationalContext>();
    assert_serde::<Point2>();
    assert_serde::<PointK>();
    assert_serde::<Task>();
    assert_serde::<KernelDescriptor>();
    assert_serde::<LayeredKernel>();
    assert_serde::<AcceleratorConfig>();
    assert_serde::<TechTuning>();
    assert_serde::<KernelSim>();
    assert_serde::<LayeredSim>();
    assert_serde::<SocConfig>();
    assert_serde::<VrApp>();
    assert_serde::<ActivityTrace>();
    assert_serde::<ProvisioningRow>();
    assert_serde::<EmbodiedModel>();
    assert_serde::<Die>();
    assert_serde::<Wafer>();
    assert_serde::<YieldModel>();
    assert_serde::<UsageProfile>();
    assert_serde::<MemoryDevice>();
    assert_serde::<SystemBom>();
    assert_serde::<Seconds>();
    assert_serde::<GramsCo2e>();
    assert_serde::<CarbonIntensity>();
}
