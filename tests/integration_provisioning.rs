//! Integration: the §VI-D hardware-provisioning case study end to end —
//! synthetic traces, heterogeneous scheduling, carbon accounting, tCDP.

use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_soc::prelude::*;

#[test]
fn m1_reproduces_table_v_shape() {
    let rows = sweep(&VrApp::m1(), &Deployment::default()).unwrap();
    let before = rows.iter().find(|r| r.cores == 8).unwrap();
    let after = rows.iter().find(|r| r.cores == 4).unwrap();

    // Area 2.25 -> 1.35 cm^2 (1.67x).
    assert!((before.soc.die_area().value() - 2.25).abs() < 1e-9);
    assert!((after.soc.die_area().value() - 1.35).abs() < 1e-9);

    // Embodied ~2x better (paper: 2.0x; yield makes ours ~1.8x).
    let emb_ratio = before.embodied.value() / after.embodied.value();
    assert!(
        (1.6..2.2).contains(&emb_ratio),
        "embodied ratio {emb_ratio}"
    );

    // Delay ~0.98x normalized FPS (slightly slower after).
    let fps = before.delay.value() / after.delay.value();
    assert!((0.95..1.0).contains(&fps), "normalized FPS {fps}");

    // Total carbon improves ~1.27x; tCDP ~1.25x.
    let carbon_ratio = before.total_carbon().value() / after.total_carbon().value();
    assert!(
        (1.1..1.5).contains(&carbon_ratio),
        "carbon ratio {carbon_ratio}"
    );
    let tcdp_ratio = before.tcdp.value() / after.tcdp.value();
    assert!(
        (1.15..1.45).contains(&tcdp_ratio),
        "tCDP ratio {tcdp_ratio}"
    );

    // EDP slightly *worse* after optimization (paper: 0.98x) — the point
    // being that carbon efficiency improves even as energy efficiency dips.
    assert!(after.edp > before.edp);

    // Energy and power essentially unchanged (paper: 332 J / 8.3 W both).
    let e_ratio = after.energy.value() / before.energy.value();
    assert!((0.95..1.05).contains(&e_ratio), "energy ratio {e_ratio}");
}

#[test]
fn per_task_optima_match_figure_10() {
    let deployment = Deployment::default();
    // M-1 at 4 cores.
    let m1 = sweep(&VrApp::m1(), &deployment).unwrap();
    assert_eq!(optimal_cores(&m1), 4);
    // B-1 / SG-1 away from 4 cores.
    for app in [VrApp::b1(), VrApp::sg1()] {
        let rows = sweep(&app, &deployment).unwrap();
        assert_ne!(optimal_cores(&rows), 4, "{}", app.name);
    }
    // All-tasks at a middle point with a modest gain.
    let all = sweep(&VrApp::all_tasks(), &deployment).unwrap();
    let best = optimal_cores(&all);
    assert!((5..=7).contains(&best), "All-tasks optimum {best}");
    let gain = improvement_over_8core(&all);
    assert!((1.0..1.2).contains(&gain), "All-tasks gain {gain}");
}

#[test]
fn tlp_indicates_over_provisioning_on_eight_cores() {
    // Paper: TLP 3.52-4.15 -> "over three unused cores on average".
    for app in VrApp::studied_tasks() {
        let trace = ActivityTrace::deterministic(&app);
        let tlp = trace.tlp();
        assert!((3.3..4.3).contains(&tlp), "{}: TLP {tlp}", app.name);
        assert!(8.0 - tlp > 3.0);
    }
}

#[test]
fn sampled_traces_agree_with_deterministic_on_average() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let app = VrApp::sg1();
    let soc = SocConfig::provisioned(5).unwrap();
    let deterministic = schedule(&ActivityTrace::deterministic(&app), &app, &soc);
    let mut rng = StdRng::seed_from_u64(99);
    let mut total = 0.0;
    let reps = 12;
    for _ in 0..reps {
        let trace = ActivityTrace::sampled(&mut rng, &app, 20_000);
        total += schedule(&trace, &app, &soc).duration.value();
    }
    let mean = total / f64::from(reps);
    let rel = (mean - deterministic.duration.value()).abs() / deterministic.duration.value();
    assert!(rel < 0.02, "sampled mean deviates {rel:.3}");
}

#[test]
fn embodied_and_capacity_scale_with_core_count() {
    let model = EmbodiedModel::default();
    let mut prev_emb = 0.0;
    let mut prev_cap = 0.0;
    for cores in 4..=8 {
        let soc = SocConfig::provisioned(cores).unwrap();
        let emb = soc.embodied_carbon(&model).unwrap().value();
        assert!(emb > prev_emb);
        assert!(soc.capacity() > prev_cap);
        prev_emb = emb;
        prev_cap = soc.capacity();
    }
}

#[test]
fn heavier_background_threads_punish_lean_configs_more() {
    // The mechanism behind B-1 vs M-1: raise background demand and the
    // 4-core slowdown grows.
    let mut light = VrApp::m1();
    let mut heavy = VrApp::m1();
    light.background_demand = 0.4;
    heavy.background_demand = 1.4;
    let four = SocConfig::provisioned(4).unwrap();
    let eight = SocConfig::quest2();
    let slowdown = |app: &VrApp| {
        schedule_app(app, &four).duration.value() / schedule_app(app, &eight).duration.value()
    };
    assert!(slowdown(&heavy) > slowdown(&light));
}

#[test]
fn deployment_grid_affects_optimal_provisioning_direction() {
    // On a very clean grid, operational carbon vanishes and embodied
    // dominates -> fewer cores always help more.
    let clean = Deployment {
        ci_use: cordoba_carbon::intensity::grids::WIND,
        ..Deployment::default()
    };
    let rows_clean = sweep(&VrApp::b1(), &clean).unwrap();
    let rows_dirty = sweep(&VrApp::b1(), &Deployment::default()).unwrap();
    assert!(optimal_cores(&rows_clean) <= optimal_cores(&rows_dirty));
    assert!(improvement_over_8core(&rows_clean) >= improvement_over_8core(&rows_dirty) - 1e-9);
}
