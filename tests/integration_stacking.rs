//! Integration: the §VI-E 3D-integration case study (Fig. 11 / Fig. 12)
//! computed directly from the accel + carbon + core crates.

use cordoba::prelude::*;
use cordoba_accel::prelude::*;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::kernel::KernelId;

fn study_points() -> Vec<DesignPoint> {
    let model = EmbodiedModel::default();
    let kernel = KernelId::Sr512.descriptor();
    study_configs()
        .iter()
        .map(|cfg| {
            let sim = simulate(cfg, &kernel);
            let energy = sim.dynamic_energy + cfg.leakage_power() * sim.latency;
            DesignPoint::new(
                cfg.name(),
                sim.latency,
                energy,
                cfg.embodied_carbon(&model).unwrap(),
                cfg.total_area(),
            )
            .unwrap()
        })
        .collect()
}

fn winner_at_share(points: &[DesignPoint], share: f64) -> (String, f64) {
    let ctx = context_for_embodied_share(points, grids::US_AVERAGE, share).unwrap();
    let best = argmin(points, MetricKind::Tcdp, &ctx).unwrap();
    let improvement = points[0].tcdp(&ctx).value() / best.tcdp(&ctx).value();
    (best.name.clone(), improvement)
}

#[test]
fn fig11_winners_match_paper() {
    let points = study_points();
    let (emb_winner, emb_gain) = winner_at_share(&points, 0.80);
    let (op_winner, op_gain) = winner_at_share(&points, 0.08);
    assert_eq!(emb_winner, "3D_2K_4M", "embodied-dominant winner");
    assert_eq!(op_winner, "3D_2K_8M", "operational-dominant winner");
    // Both beat the baseline; the operational-case benefit is much larger
    // (paper: 1.08x vs 6.9x).
    assert!(emb_gain > 1.0);
    assert!(op_gain > 2.0 * emb_gain, "op {op_gain} vs emb {emb_gain}");
}

#[test]
fn fig12_pareto_eliminates_five_of_seven() {
    let points = study_points();
    let sweep = BetaSweep::run(&points);
    let survivors = sweep.surviving_names();
    assert_eq!(survivors.len(), 2, "{survivors:?}");
    assert!(survivors.contains(&"3D_2K_4M"));
    assert!(survivors.contains(&"3D_2K_8M"));
    for gone in [
        "Baseline_1K_1M",
        "3D_1K_2M",
        "3D_1K_4M",
        "3D_1K_8M",
        "3D_2K_16M",
    ] {
        assert!(sweep.eliminated_names().contains(&gone), "{gone} survived");
    }
    assert!((sweep.elimination_fraction() - 5.0 / 7.0).abs() < 1e-12);
}

#[test]
fn baseline_is_memory_starved_and_3d_relieves_it() {
    let kernel = KernelId::Sr512.descriptor();
    let base = simulate(&baseline(), &kernel);
    assert!(base.is_memory_bound(), "1 MiB baseline must be DRAM-bound");
    // The largest 2K stack is compute-bound.
    let big = stacked_configs()
        .into_iter()
        .find(|c| c.name() == "3D_2K_16M")
        .unwrap();
    let relieved = simulate(&big, &kernel);
    assert!(!relieved.is_memory_bound());
    assert!(relieved.latency < base.latency);
    assert!(relieved.dram_traffic < base.dram_traffic);
}

#[test]
fn stacking_pays_embodied_but_saves_energy() {
    let points = study_points();
    let base = &points[0];
    for p in &points[1..] {
        assert!(p.embodied > base.embodied, "{} embodied", p.name);
        assert!(p.energy < base.energy, "{} energy", p.name);
    }
}

#[test]
fn lifetime_change_acts_like_ci_change_through_beta() {
    // §VI-E note: lifetime and CI_use(t) changes both scale E -> C_op, so
    // they move the same beta knob. Doubling tasks at half the CI gives the
    // same tCDP ordering.
    let points = study_points();
    let a = OperationalContext::new(2e8, grids::US_AVERAGE).unwrap();
    let b = OperationalContext::new(4e8, grids::US_AVERAGE * 0.5).unwrap();
    assert!((beta_for_context(&a) - beta_for_context(&b)).abs() < 1e-9);
    let rank = |ctx: &OperationalContext| {
        let mut names: Vec<&str> = points.iter().map(|p| p.name.as_str()).collect();
        names.sort_by(|x, y| {
            let px = points
                .iter()
                .find(|p| p.name == *x)
                .unwrap()
                .tcdp(ctx)
                .value();
            let py = points
                .iter()
                .find(|p| p.name == *y)
                .unwrap()
                .tcdp(ctx)
                .value();
            px.total_cmp(&py)
        });
        names.first().map(|s| (*s).to_owned()).unwrap()
    };
    // The tCDP winner is identical (embodied terms are equal; operational
    // terms scale identically).
    assert_eq!(rank(&a), rank(&b));
}

#[test]
fn beta_bridge_recovers_both_fig11_winners() {
    let points = study_points();
    let sweep = BetaSweep::run(&points);
    let emb_ctx = context_for_embodied_share(&points, grids::US_AVERAGE, 0.80).unwrap();
    let op_ctx = context_for_embodied_share(&points, grids::US_AVERAGE, 0.08).unwrap();
    let name = |ctx: &OperationalContext| {
        let idx = sweep.optimal_for_beta(beta_for_context(ctx)).unwrap();
        sweep.points[idx].name.clone()
    };
    assert_eq!(name(&emb_ctx), "3D_2K_4M");
    assert_eq!(name(&op_ctx), "3D_2K_8M");
}
