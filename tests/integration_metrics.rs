//! Cross-crate integration: metrics computed from the accelerator
//! simulator + workload equations must compose consistently with the
//! carbon substrate.

use cordoba::prelude::*;
use cordoba_accel::prelude::*;
use cordoba_carbon::prelude::*;
use cordoba_workloads::prelude::*;

fn point_for(config_name: &str, task: &Task) -> DesignPoint {
    let cfg = config_by_name(config_name).expect("valid config name");
    cordoba::dse::accel_design_point(&cfg, task, &EmbodiedModel::default())
        .expect("valid design point")
}

#[test]
fn task_delay_is_sum_of_kernel_latencies_through_the_stack() {
    let cfg = config_by_name("a48").unwrap();
    let task = Task::ai_5_kernels();
    let point = point_for("a48", &task);
    let by_hand: Seconds = task
        .kernels()
        .map(|k| simulate(&cfg, &k.descriptor()).latency)
        .sum();
    assert!((point.delay.value() - by_hand.value()).abs() / by_hand.value() < 1e-12);
}

#[test]
fn task_energy_includes_leakage_over_task_delay() {
    let cfg = config_by_name("a48").unwrap();
    let task = Task::ai_5_kernels();
    let point = point_for("a48", &task);
    let dynamic: Joules = task
        .kernels()
        .map(|k| simulate(&cfg, &k.descriptor()).dynamic_energy)
        .sum();
    let expected = dynamic + cfg.leakage_power() * point.delay;
    assert!((point.energy.value() - expected.value()).abs() / expected.value() < 1e-9);
}

#[test]
fn total_carbon_decomposes_into_embodied_plus_operational() {
    let point = point_for("a37", &Task::xr_10_kernels());
    for tasks in [1.0, 1e4, 1e8] {
        let ctx = OperationalContext::us_grid(tasks);
        let total = point.total_carbon(&ctx);
        let sum = point.embodied + point.operational(&ctx);
        assert!((total.value() - sum.value()).abs() < 1e-9);
        // And operational matches the carbon crate directly.
        let direct = operational_carbon(grids::US_AVERAGE, point.energy * tasks);
        assert!((point.operational(&ctx).value() - direct.value()).abs() < 1e-9);
    }
}

#[test]
fn tcdp_grows_linearly_in_task_count_once_operational_dominates() {
    let point = point_for("a23", &Task::ai_5_kernels());
    let a = point.tcdp(&OperationalContext::us_grid(1e10)).value();
    let b = point.tcdp(&OperationalContext::us_grid(1e11)).value();
    let ratio = b / a;
    assert!(
        (ratio - 10.0).abs() < 0.5,
        "operational-dominated tCDP should scale ~linearly, got {ratio}"
    );
}

#[test]
fn embodied_share_sweeps_from_one_to_zero() {
    let point = point_for("a48", &Task::all_kernels());
    let lo = point.embodied_share(&OperationalContext::us_grid(1e-3));
    let hi = point.embodied_share(&OperationalContext::us_grid(1e14));
    assert!(lo > 0.999, "share at tiny op time {lo}");
    assert!(hi < 0.001, "share at huge op time {hi}");
}

#[test]
fn cleaner_grid_reduces_tcdp_but_not_edp() {
    let point = point_for("a48", &Task::xr_5_kernels());
    let dirty = OperationalContext::new(1e8, grids::COAL).unwrap();
    let clean = OperationalContext::new(1e8, grids::SOLAR).unwrap();
    assert!(point.tcdp(&dirty) > point.tcdp(&clean));
    assert_eq!(point.edp(), point.edp()); // EDP is grid-independent
    assert!(
        (MetricKind::Edp.evaluate(&point, &dirty) - MetricKind::Edp.evaluate(&point, &clean)).abs()
            < 1e-15
    );
}

#[test]
fn cost_tables_and_task_vectors_agree() {
    let cfg = config_by_name("a60").unwrap();
    let table = full_cost_table(&cfg);
    let tasks = Task::evaluation_suite();
    let vector = TaskVector::evaluate(&tasks, &table).unwrap();
    for (i, task) in tasks.iter().enumerate() {
        assert_eq!(vector.delays()[i], table.task_delay(task).unwrap());
        assert_eq!(vector.energies()[i], table.task_energy(task).unwrap());
    }
    assert!(vector.total_delay() >= vector.delays()[0]);
}

#[test]
fn metric_units_compose_across_crates() {
    // A full sentence through the type system: simulate -> energy (J),
    // power (W), embodied (g), tCDP (g*s).
    let cfg = config_by_name("a1").unwrap();
    let sim = simulate(&cfg, &KernelId::MobileNetV2.descriptor());
    let energy: Joules = sim.dynamic_energy;
    let power: Watts = energy / sim.latency;
    assert!((power.value() - sim.dynamic_power().value()).abs() < 1e-12);
    let embodied: GramsCo2e = cfg.embodied_carbon(&EmbodiedModel::default()).unwrap();
    let tcdp: GramSecondsCo2e = embodied * sim.latency;
    assert!(tcdp.value() > 0.0);
}

#[test]
fn usage_profile_amortization_bridges_soc_and_carbon() {
    // Eq. IV.3 through real components: amortizing a SoC's embodied carbon
    // over the M-1 task's share of operational life.
    use cordoba_soc::prelude::*;
    let soc = SocConfig::quest2();
    let embodied = soc.embodied_carbon(&EmbodiedModel::default()).unwrap();
    let usage = UsageProfile::from_daily_hours(5.0, 2.0).unwrap();
    let task_time = Seconds::new(40.0);
    let amortized = usage.amortized_embodied(embodied, task_time);
    let sessions = usage.operational_time().value() / 40.0;
    assert!((amortized.value() * sessions - embodied.value()).abs() / embodied.value() < 1e-9);
}
