//! Integration: the full §VI-B design-space exploration over the 121
//! configurations and five Table IV tasks, cross-validated against the
//! §IV-B Lagrange elimination.

use cordoba::prelude::*;
use cordoba_accel::space::{config_by_name, design_space, SPACE_SIZE};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::task::Task;

fn sweep_for(task: &Task) -> OpTimeSweep {
    let points = evaluate_space(&design_space(), task, &EmbodiedModel::default()).unwrap();
    OpTimeSweep::new(points, log_sweep(4, 11, 4), grids::US_AVERAGE).unwrap()
}

#[test]
fn elimination_matches_paper_band_for_every_task() {
    // Paper: 96.7%, 98.3%, 96.7%, 98.3%, 97.5% eliminated.
    for task in Task::evaluation_suite() {
        let sweep = sweep_for(&task);
        let frac = sweep.elimination_fraction();
        assert!(
            (0.93..=0.995).contains(&frac),
            "{}: eliminated {:.1}%",
            task.name(),
            frac * 100.0
        );
    }
}

#[test]
fn every_op_time_winner_lies_on_the_beta_support_set() {
    // Theorem check: the tCDP argmin at any operational time must be a
    // lower-convex-hull point of (C_emb*D, E*D) — the §IV-B support set.
    for task in [Task::all_kernels(), Task::ai_5_kernels()] {
        let sweep = sweep_for(&task);
        let beta = BetaSweep::run(&sweep.points);
        let support: Vec<&str> = beta
            .support
            .iter()
            .map(|&i| beta.points[i].name.as_str())
            .collect();
        for name in sweep.ever_optimal() {
            assert!(
                support.contains(&name.as_str()),
                "{}: op-time winner {} missing from beta support {:?}",
                task.name(),
                name,
                support
            );
        }
    }
}

#[test]
fn optimal_design_grows_with_operational_time() {
    for task in Task::evaluation_suite() {
        let sweep = sweep_for(&task);
        let first = &sweep.points[sweep.optimal_at(0)];
        let last = &sweep.points[sweep.optimal_at(sweep.task_counts.len() - 1)];
        assert!(
            last.area >= first.area,
            "{}: late optimum {} smaller than early {}",
            task.name(),
            last.name,
            first.name
        );
        assert!(last.edp() <= first.edp());
        assert!(last.delay <= first.delay);
    }
}

#[test]
fn xr_optima_use_more_sram_than_ai_optima_at_matched_op_time() {
    let xr = sweep_for(&Task::xr_5_kernels());
    let ai = sweep_for(&Task::ai_5_kernels());
    for n_target in [1e5, 1e7, 1e9] {
        let sram = |s: &OpTimeSweep| {
            let idx = s.index_near(n_target);
            let name = &s.points[s.optimal_at(idx)].name;
            config_by_name(name).unwrap().sram().to_mebibytes()
        };
        assert!(
            sram(&xr) >= 4.0 * sram(&ai),
            "at {n_target:.0e}: XR {} MiB vs AI {} MiB",
            sram(&xr),
            sram(&ai)
        );
    }
}

#[test]
fn specialized_tasks_beat_the_general_task() {
    // Fig. 8(f): the specialized tasks' optimal bars sit well above (better
    // tCDP than) the general "All kernels" bar at matched operational time
    // (paper: up to 8.3x for AI 5 at 1e6, 8.4x for XR 5 at 1e10).
    let tasks = Task::evaluation_suite();
    let general = sweep_for(&tasks[0]);
    let benefit_of = |task: &Task, n_target: f64| {
        let sweep = sweep_for(task);
        let idx = sweep.index_near(n_target);
        let gidx = general.index_near(n_target);
        let spec = sweep.tcdp_at(idx, sweep.optimal_at(idx));
        let gen = general.tcdp_at(gidx, general.optimal_at(gidx));
        gen / spec
    };
    for task in &tasks[3..] {
        for n_target in [1e6, 1e10] {
            let benefit = benefit_of(task, n_target);
            assert!(
                benefit > 1.3,
                "{} at {n_target:.0e}: specialization benefit only {benefit:.2}x",
                task.name()
            );
        }
    }
    // The paper's strongest claim is AI 5 at 1e6 inferences (8.3x): the
    // lean AI-only task dodges the SR kernels entirely.
    assert!(
        benefit_of(&tasks[4], 1e6) > 3.0,
        "AI 5 at 1e6 should show a strong specialization benefit"
    );
}

#[test]
fn specialized_hardware_beats_general_hardware_on_the_specialized_task() {
    // Cross-hardware view: running AI 5 on the accelerator optimized for
    // "All kernels" wastes embodied carbon (over-provisioned SRAM/MACs)
    // versus the AI-5-optimal accelerator.
    let general = sweep_for(&Task::all_kernels());
    let ai5 = sweep_for(&Task::ai_5_kernels());
    for n_target in [1e5, 1e7] {
        let idx = ai5.index_near(n_target);
        let gidx = general.index_near(n_target);
        let general_opt = &general.points[general.optimal_at(gidx)].name;
        let own_opt = ai5.optimal_at(idx);
        let cross = ai5
            .points
            .iter()
            .position(|p| &p.name == general_opt)
            .expect("same 121-config namespace");
        let benefit = ai5.tcdp_at(idx, cross) / ai5.tcdp_at(idx, own_opt);
        assert!(
            benefit > 1.2,
            "AI 5 at {n_target:.0e}: cross-hardware penalty only {benefit:.2}x"
        );
    }
}

#[test]
fn optimal_vs_average_benefit_exceeds_paper_minimum() {
    // Paper: minimum benefit between optimal and average is 2.3x.
    for task in Task::evaluation_suite() {
        let sweep = sweep_for(&task);
        for n in 0..sweep.task_counts.len() {
            let headroom = sweep.optimal_vs_average_at(n);
            assert!(
                headroom > 1.8,
                "{} at index {n}: headroom {headroom:.2}",
                task.name()
            );
        }
    }
}

#[test]
fn constrained_problem_respects_area_budget_over_the_space() {
    let points = evaluate_space(
        &design_space(),
        &Task::all_kernels(),
        &EmbodiedModel::default(),
    )
    .unwrap();
    let ctx = OperationalContext::us_grid(1e8);
    let unconstrained = OptimizationProblem::tcdp(points.clone())
        .solve(&ctx)
        .unwrap();
    let tight_area = unconstrained.best.area * 0.5;
    let constrained = OptimizationProblem::tcdp(points)
        .with_constraints(Constraints::none().with_max_area(tight_area))
        .solve(&ctx)
        .unwrap();
    assert!(constrained.best.area <= tight_area);
    assert!(constrained.objective_value >= unconstrained.objective_value);
    assert!(constrained.feasible_count < SPACE_SIZE);
}

#[test]
fn qos_constraint_can_forbid_the_tcdp_optimum() {
    // §III-C scenario (a) on the real space: a tight latency ceiling moves
    // the choice off the tCDP optimum.
    let points = evaluate_space(
        &design_space(),
        &Task::xr_10_kernels(),
        &EmbodiedModel::default(),
    )
    .unwrap();
    let ctx = OperationalContext::us_grid(1e5);
    let free = OptimizationProblem::tcdp(points.clone())
        .solve(&ctx)
        .unwrap();
    let ceiling = free.best.delay * 0.5;
    let constrained = OptimizationProblem::tcdp(points)
        .with_constraints(Constraints::none().with_max_delay(ceiling))
        .solve(&ctx)
        .unwrap();
    assert_ne!(constrained.best.name, free.best.name);
    assert!(constrained.best.delay <= ceiling);
}
