//! Integration: uncertainty analyses over the real 121-design space —
//! Fig. 6 domain studies and §IV-B/§VI-C robustness machinery.

use cordoba::prelude::*;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::integral::CiIntegral;
use cordoba_carbon::intensity::{grids, ConstantCi, DiurnalCi, TrendCi};
use cordoba_carbon::units::{CarbonIntensity, Seconds};
use cordoba_workloads::task::Task;

fn space_points() -> Vec<DesignPoint> {
    evaluate_space(
        &design_space(),
        &Task::all_kernels(),
        &EmbodiedModel::default(),
    )
    .unwrap()
}

#[test]
fn domain_contexts_hit_their_embodied_shares() {
    let points = space_points();
    for domain in DomainClass::ALL {
        let analysis = domain_analysis(&points, domain).unwrap();
        let mean_share: f64 = points
            .iter()
            .map(|p| p.embodied_share(&analysis.context))
            .sum::<f64>()
            / points.len() as f64;
        assert!(
            (mean_share - domain.embodied_share()).abs() < 0.02,
            "{}: share {mean_share}",
            domain.label()
        );
    }
}

#[test]
fn correlation_orders_wearable_mobile_datacenter() {
    // Fig. 6: EDP-tCDP correlation strengthens as operational carbon
    // dominates.
    let points = space_points();
    let corr: Vec<f64> = DomainClass::ALL
        .iter()
        .map(|&d| domain_analysis(&points, d).unwrap().correlation)
        .collect();
    assert!(
        corr[0] < corr[1],
        "wearable {} vs mobile {}",
        corr[0],
        corr[1]
    );
    assert!(
        corr[1] < corr[2],
        "mobile {} vs datacenter {}",
        corr[1],
        corr[2]
    );
    assert!(corr[2] > 0.9, "datacenter correlation {}", corr[2]);
}

#[test]
fn iso_edp_designs_spread_widely_in_tcdp_when_embodied_dominates() {
    // Fig. 6: "two EDP-equivalent designs exhibit 100x difference in tCDP".
    let points = space_points();
    let wearable = domain_analysis(&points, DomainClass::Wearable).unwrap();
    assert!(
        wearable.iso_edp_tcdp_spread > 5.0,
        "spread {:.1}x",
        wearable.iso_edp_tcdp_spread
    );
    let datacenter = domain_analysis(&points, DomainClass::Datacenter).unwrap();
    assert!(wearable.iso_edp_tcdp_spread > datacenter.iso_edp_tcdp_spread);
}

#[test]
fn edp_and_tcdp_optima_differ_except_under_operational_dominance() {
    let points = space_points();
    let wearable = domain_analysis(&points, DomainClass::Wearable).unwrap();
    assert_ne!(wearable.edp_optimal, wearable.tcdp_optimal);
    // At an extreme operational-dominant context the two coincide.
    let ctx = OperationalContext::us_grid(1e15);
    let edp_best = argmin(&points, MetricKind::Edp, &ctx).unwrap();
    let tcdp_best = argmin(&points, MetricKind::Tcdp, &ctx).unwrap();
    assert_eq!(edp_best.name, tcdp_best.name);
}

#[test]
fn time_varying_ci_preserves_beta_elimination_guarantee() {
    // Any design eliminated by the beta sweep must also lose under every
    // concrete CI trajectory (evaluated via lifetime-mean CI).
    let points = space_points();
    let sweep = BetaSweep::run(&points);
    let eliminated = sweep.eliminated_names();
    let lifetime = Seconds::from_years(4.0);
    let flat = ConstantCi::new(grids::US_AVERAGE);
    let diurnal = DiurnalCi::new(grids::US_AVERAGE, CarbonIntensity::new(120.0)).unwrap();
    let trend = TrendCi::new(grids::COAL, 0.12).unwrap();
    let sources: [&dyn CiIntegral; 3] = [&flat, &diurnal, &trend];
    for source in sources {
        for tasks in [1e5, 1e9] {
            let best = points
                .iter()
                .min_by(|a, b| {
                    tcdp_under_source(a, source, tasks, lifetime)
                        .total_cmp(&tcdp_under_source(b, source, tasks, lifetime))
                })
                .unwrap();
            assert!(
                !eliminated.contains(&best.name.as_str()),
                "eliminated design {} won under {source:?}",
                best.name
            );
        }
    }
}

#[test]
fn regret_ranks_robust_designs_over_the_real_space() {
    let points = space_points();
    let clean = ConstantCi::new(grids::SOLAR);
    let dirty = ConstantCi::new(grids::COAL);
    let decarb = TrendCi::new(grids::US_AVERAGE, 0.10).unwrap();
    let scenarios: Vec<&dyn CiIntegral> = vec![&clean, &dirty, &decarb];
    let regret = scenario_regret(&points, &scenarios, 1e8, Seconds::from_years(4.0)).unwrap();
    let (best_idx, best_regret) = regret
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    assert!(*best_regret < 2.0, "robust regret {best_regret}");
    // The robust design must survive the beta sweep as well.
    let sweep = BetaSweep::run(&points);
    assert!(sweep
        .surviving_names()
        .contains(&points[best_idx].name.as_str()));
}

#[test]
fn seasonal_grid_profiles_drive_regret_analysis() {
    use cordoba_carbon::intensity::SeasonalCi;
    let points = space_points();
    let solar = SeasonalCi::solar_rich();
    let coal = SeasonalCi::coal_heavy();
    let wind = SeasonalCi::wind_hydro();
    let scenarios: Vec<&dyn CiIntegral> = vec![&solar, &coal, &wind];
    let regret = scenario_regret(&points, &scenarios, 1e8, Seconds::from_years(5.0)).unwrap();
    // The robust design under realistic composite grids still survives the
    // beta sweep (mean-CI equivalence holds for constant power, eq. IV.7).
    let best_idx = regret
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    let sweep = BetaSweep::run(&points);
    assert!(sweep
        .surviving_names()
        .contains(&points[best_idx].name.as_str()));
    // Dirtier grids make operational carbon dominate and favor the
    // energy-efficient end of the Pareto set.
    let coal_best = points
        .iter()
        .min_by(|a, b| {
            tcdp_under_source(a, &coal, 1e8, Seconds::from_years(5.0))
                .total_cmp(&tcdp_under_source(b, &coal, 1e8, Seconds::from_years(5.0)))
        })
        .unwrap();
    let wind_best = points
        .iter()
        .min_by(|a, b| {
            tcdp_under_source(a, &wind, 1e8, Seconds::from_years(5.0))
                .total_cmp(&tcdp_under_source(b, &wind, 1e8, Seconds::from_years(5.0)))
        })
        .unwrap();
    assert!(coal_best.edp() <= wind_best.edp());
    assert!(coal_best.embodied >= wind_best.embodied);
}

#[test]
fn robustness_score_trades_peak_optimality_for_average() {
    let points = space_points();
    let sweep = OpTimeSweep::new(points, log_sweep(4, 11, 4), grids::US_AVERAGE).unwrap();
    let robust = sweep.robust_choice();
    let early = sweep.optimal_at(0);
    // The early specialist is worse on average; the robust pick is worse
    // than 1.0 somewhere but best on average.
    assert!(sweep.robustness_score(robust) <= sweep.robustness_score(early));
    assert!(sweep.robustness_score(robust) >= 1.0);
    // Paper: the early specialist can be >10x off at 1e11 inferences.
    let last = sweep.task_counts.len() - 1;
    assert!(
        sweep.normalized_at(last)[early] > 2.0,
        "early specialist only {:.1}x off at the far end",
        sweep.normalized_at(last)[early]
    );
}
