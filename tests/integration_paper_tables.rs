//! Integration: the §III six-IC worked example must reproduce the paper's
//! Table I and Table II numbers (these are exact, not shape-only — the
//! tables are closed-form).

use cordoba::case_ics::{candidates, design_points, table_one, table_two, Scenario};
use cordoba::prelude::*;

#[test]
fn table_one_rows_match_published_numbers() {
    let rows = table_one(&Scenario::default());
    // (name, throughput, overall power, energy/inf, budget throughput, EDP)
    let expected = [
        ("A", 0.2, 190.0, 0.19, 10.0, 0.950),
        ("B", 2.0, 200.0, 0.20, 95.0, 0.100),
        ("C", 4.0, 250.0, 0.25, 152.0, 0.0625),
        ("D", 8.0, 400.0, 0.40, 190.0, 0.050),
        ("E", 16.0, 1000.0, 1.00, 152.0, 0.0625),
        ("F", 32.0, 5000.0, 5.00, 60.8, 0.15625),
    ];
    for (name, tput, power, e_inf, budget_tput, edp) in expected {
        let row = rows.iter().find(|r| r.ic.name == name).unwrap();
        assert!(
            (row.throughput - tput).abs() / tput < 1e-9,
            "{name} throughput"
        );
        assert!(
            (row.overall_power - power).abs() / power < 1e-9,
            "{name} power"
        );
        assert!(
            (row.energy_per_inference - e_inf).abs() / e_inf < 1e-9,
            "{name} energy"
        );
        assert!(
            (row.budget_throughput - budget_tput).abs() / budget_tput < 1e-3,
            "{name} budget throughput"
        );
        assert!((row.edp - edp).abs() / edp < 1e-9, "{name} EDP");
    }
}

#[test]
fn table_two_rows_match_published_numbers() {
    let rows = table_two(&Scenario::default());
    // (name, time/inf, CCI x 1e5, tC, tCDP) from the paper's Table II.
    let expected = [
        ("A", 5.0, 4.86, 5108.0, 25541.2),
        ("B", 0.5, 4.96, 5219.0, 2609.6),
        ("C", 0.25, 5.49, 5774.0, 1443.5),
        ("D", 0.125, 7.08, 7438.0, 929.8),
        ("E", 0.0625, 13.4, 14096.0, 881.0),
        ("F", 0.03125, 55.6, 58480.0, 1827.5),
    ];
    for (name, t_inf, cci_e5, tc, tcdp) in expected {
        let row = rows.iter().find(|r| r.ic.name == name).unwrap();
        assert!((row.time_per_inference - t_inf).abs() < 1e-9, "{name} time");
        assert!((row.cci * 1e5 - cci_e5).abs() / cci_e5 < 0.01, "{name} CCI");
        assert!((row.total_carbon - tc).abs() / tc < 0.01, "{name} tC");
        assert!((row.tcdp - tcdp).abs() / tcdp < 0.01, "{name} tCDP");
    }
}

#[test]
fn headline_story_holds() {
    let scenario = Scenario::default();
    let t1 = table_one(&scenario);
    let t2 = table_two(&scenario);
    // Table I: D is EDP-optimal and wins the energy budget.
    let edp_opt = t1.iter().min_by(|a, b| a.edp.total_cmp(&b.edp)).unwrap();
    assert_eq!(edp_opt.ic.name, "D");
    // Table II: E is tCDP-optimal and wins the carbon budget; A minimizes
    // tC/CCI but is 80x slower than E.
    let tcdp_opt = t2.iter().min_by(|a, b| a.tcdp.total_cmp(&b.tcdp)).unwrap();
    assert_eq!(tcdp_opt.ic.name, "E");
    let tc_opt = t2
        .iter()
        .min_by(|a, b| a.total_carbon.total_cmp(&b.total_carbon))
        .unwrap();
    assert_eq!(tc_opt.ic.name, "A");
    assert!(tc_opt.time_per_inference / tcdp_opt.time_per_inference > 50.0);
}

#[test]
fn throughput_is_proportional_to_inverse_tcdp() {
    // The §III-B identity: relative throughput == relative 1/tCDP.
    let rows = table_two(&Scenario::default());
    let products: Vec<f64> = rows.iter().map(|r| r.budget_throughput * r.tcdp).collect();
    let (min, max) = products
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &p| {
            (lo.min(p), hi.max(p))
        });
    assert!((max - min) / min < 1e-9, "products vary: {products:?}");
}

#[test]
fn beta_sweep_on_the_six_ics_matches_tcdp_ranking() {
    let scenario = Scenario::default();
    let (points, ctx) = design_points(&scenario);
    let sweep = BetaSweep::run(&points);
    let beta = beta_for_context(&ctx);
    let via_beta = sweep.optimal_for_beta(beta).unwrap();
    assert_eq!(points[via_beta].name, "E");
    // All ICs share the same embodied carbon, so C_emb*D is minimized by
    // the fastest IC and E*D by the EDP-optimal: both extremes survive.
    let survivors = sweep.surviving_names();
    assert!(survivors.contains(&"F"), "fastest IC should survive");
    assert!(survivors.contains(&"D"), "EDP-optimal IC should survive");
}

#[test]
fn scenario_derivations_match_paper_constants() {
    let s = Scenario::default();
    assert!((s.inferences_per_lifetime() - 1.05e8).abs() < 1.0);
    assert!((s.carbon_budget().value() - 1.003e-3).abs() < 2e-6);
    let ics = candidates();
    assert_eq!(ics.len(), 6);
    assert!((ics[3].power().value() - 3.2).abs() < 1e-9); // IC "D": 3.2 W
}
