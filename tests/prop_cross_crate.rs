//! Property-based tests (proptest) on cross-crate invariants: unit
//! algebra, yield monotonicity, Pareto/hull laws, simulator monotonicity,
//! scheduler monotonicity, and metric identities.

use cordoba::metrics::{DesignPoint, OperationalContext};
use cordoba::pareto::{lower_hull_indices, pareto_indices, Point2};
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::sim::simulate;
use cordoba_carbon::prelude::*;
use cordoba_soc::prelude::*;
use cordoba_workloads::kernel::KernelId;
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = KernelId> {
    prop::sample::select(KernelId::ALL.to_vec())
}

proptest! {
    #[test]
    fn power_time_energy_algebra(p in 0.0f64..1e4, t in 1e-6f64..1e6) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        let back: Watts = e / Seconds::new(t);
        prop_assert!((back.value() - p).abs() <= 1e-9 * p.abs().max(1.0));
        let kwh = e.to_kilowatt_hours().to_joules();
        prop_assert!((kwh.value() - e.value()).abs() <= 1e-9 * e.value().max(1.0));
    }

    #[test]
    fn carbon_scales_linearly_with_energy(ci in 0.0f64..1000.0, e in 0.0f64..1e9) {
        let one = operational_carbon(CarbonIntensity::new(ci), Joules::new(e));
        let two = operational_carbon(CarbonIntensity::new(ci), Joules::new(2.0 * e));
        prop_assert!((two.value() - 2.0 * one.value()).abs() <= 1e-9 * two.value().max(1.0));
    }

    #[test]
    fn yield_models_are_monotone_in_area(
        a1 in 0.01f64..5.0,
        delta in 0.01f64..5.0,
        d0 in 0.01f64..0.5,
    ) {
        let d0 = DefectDensity::new(d0);
        for model in [
            YieldModel::Murphy,
            YieldModel::Poisson,
            YieldModel::Seeds,
            YieldModel::BoseEinstein { layers: 8 },
        ] {
            let small = model.fraction(SquareCentimeters::new(a1), d0);
            let large = model.fraction(SquareCentimeters::new(a1 + delta), d0);
            prop_assert!(large <= small, "{model:?} not monotone");
            prop_assert!((0.0..=1.0).contains(&small));
            // Effective area is always inflated.
            prop_assert!(
                model.effective_area(SquareCentimeters::new(a1), d0).value() >= a1
            );
        }
    }

    #[test]
    fn embodied_carbon_is_monotone_in_area(
        a in 0.01f64..4.0,
        extra in 0.01f64..4.0,
    ) {
        let model = EmbodiedModel::default();
        let small = model.die_carbon(&Die::new("s", SquareCentimeters::new(a), ProcessNode::N7).unwrap());
        let large = model.die_carbon(&Die::new("l", SquareCentimeters::new(a + extra), ProcessNode::N7).unwrap());
        prop_assert!(large > small);
    }

    #[test]
    fn pareto_front_is_sound_and_complete(
        coords in prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..60)
    ) {
        let points: Vec<Point2> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point2::new(format!("p{i}"), x, y))
            .collect();
        let front = pareto_indices(&points);
        // Soundness: no front point is dominated.
        for &i in &front {
            for (j, other) in points.iter().enumerate() {
                if i != j {
                    prop_assert!(!other.dominates(&points[i]));
                }
            }
        }
        // Completeness: every non-front point is dominated by someone.
        for i in 0..points.len() {
            if !front.contains(&i) {
                prop_assert!(points.iter().any(|o| o.dominates(&points[i])));
            }
        }
        // The hull is a subset of the front, and every hull point wins some
        // scalarization.
        let hull = lower_hull_indices(&points);
        for &h in &hull {
            prop_assert!(front.contains(&h));
        }
        // Each hull point must (tie-)win the scalarization for a beta
        // derived from its neighboring hull segments' critical slopes.
        let critical_beta = |a: usize, b: usize| {
            (points[b].x - points[a].x) / (points[a].y - points[b].y)
        };
        for (pos, &h) in hull.iter().enumerate() {
            let beta = if hull.len() == 1 {
                1.0
            } else if pos == 0 {
                critical_beta(hull[0], hull[1]) * 0.5
            } else if pos == hull.len() - 1 {
                critical_beta(hull[pos - 1], hull[pos]) * 2.0
            } else {
                let lo = critical_beta(hull[pos - 1], hull[pos]);
                let hi = critical_beta(hull[pos], hull[pos + 1]);
                (lo * hi).sqrt()
            };
            prop_assume!(beta.is_finite() && beta >= 0.0);
            let vh = points[h].x + beta * points[h].y;
            let vbest = (0..points.len())
                .map(|i| points[i].x + beta * points[i].y)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                vh <= vbest * (1.0 + 1e-9) + 1e-9,
                "hull point {h} loses its own beta {beta}"
            );
        }
    }

    #[test]
    fn simulator_is_monotone_in_resources(
        kernel in kernel_strategy(),
        units_exp in 0u32..9,
        sram_exp in 0u32..9,
    ) {
        let k = kernel.descriptor();
        let units = 1u32 << units_exp;
        let sram = Bytes::from_mebibytes(f64::from(1u32 << sram_exp));
        let base = simulate(
            &AcceleratorConfig::on_die("base", units, sram).unwrap(),
            &k,
        );
        // More MAC units never increase compute time or latency.
        let more_units = simulate(
            &AcceleratorConfig::on_die("units", units * 2, sram).unwrap(),
            &k,
        );
        prop_assert!(more_units.compute_time <= base.compute_time);
        prop_assert!(more_units.latency <= base.latency);
        // More SRAM never increases DRAM traffic or memory time.
        let more_sram = simulate(
            &AcceleratorConfig::on_die("sram", units, sram * 2.0).unwrap(),
            &k,
        );
        prop_assert!(more_sram.dram_traffic <= base.dram_traffic);
        prop_assert!(more_sram.memory_time <= base.memory_time);
        // Sanity: all outputs finite and positive.
        prop_assert!(base.latency.is_positive());
        prop_assert!(base.dynamic_energy.is_positive());
        prop_assert!(base.dram_traffic.value() >= 0.0);
    }

    #[test]
    fn scheduler_is_monotone_in_cores(app_idx in 0usize..4, cores in 4u32..8) {
        let app = &VrApp::studied_tasks()[app_idx];
        let fewer = schedule_app(app, &SocConfig::provisioned(cores).unwrap());
        let more = schedule_app(app, &SocConfig::provisioned(cores + 1).unwrap());
        prop_assert!(more.duration <= fewer.duration);
        // Work is invariant.
        prop_assert!((more.work - fewer.work).abs() < 1e-9);
    }

    #[test]
    fn tcdp_identity_embodied_plus_beta_energy(
        d in 1e-3f64..1e3,
        e in 1e-3f64..1e3,
        emb in 0.0f64..1e5,
        tasks in 1.0f64..1e10,
        ci in 1.0f64..1000.0,
    ) {
        // tCDP == C_emb*D + beta*(E*D) with beta = N*CI/3.6e6.
        let p = DesignPoint::new(
            "x",
            Seconds::new(d),
            Joules::new(e),
            GramsCo2e::new(emb),
            SquareCentimeters::new(1.0),
        ).unwrap();
        let ctx = OperationalContext::new(tasks, CarbonIntensity::new(ci)).unwrap();
        let beta = cordoba::lagrange::beta_for_context(&ctx);
        let via_beta = p.embodied_delay().value() + beta * p.energy_delay().value();
        let direct = p.tcdp(&ctx).value();
        prop_assert!((via_beta - direct).abs() <= 1e-9 * direct.max(1.0));
    }

    #[test]
    fn amortization_is_linear(
        years in 0.5f64..10.0,
        hours in 0.5f64..24.0,
        task_secs in 1.0f64..1e6,
        emb in 1.0f64..1e5,
    ) {
        let usage = UsageProfile::from_daily_hours(years, hours).unwrap();
        let one = usage.amortized_embodied(GramsCo2e::new(emb), Seconds::new(task_secs));
        let two = usage.amortized_embodied(GramsCo2e::new(emb), Seconds::new(2.0 * task_secs));
        prop_assert!((two.value() - 2.0 * one.value()).abs() <= 1e-9 * two.value().max(1e-12));
    }

    #[test]
    fn ci_sources_are_non_negative_everywhere(
        t_days in 0.0f64..3650.0,
        mean in 1.0f64..1000.0,
        amp_frac in 0.0f64..1.0,
        decline in 0.0f64..0.3,
    ) {
        let t = Seconds::from_days(t_days);
        let mean_ci = CarbonIntensity::new(mean);
        let diurnal = DiurnalCi::new(mean_ci, mean_ci * amp_frac * 0.999).unwrap();
        prop_assert!(diurnal.at(t).value() >= -1e-9);
        let trend = TrendCi::new(mean_ci, decline).unwrap();
        prop_assert!(trend.at(t).value() >= 0.0);
        prop_assert!(trend.at(t).value() <= mean + 1e-9);
    }
}
