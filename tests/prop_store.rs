//! Determinism contract of the content-addressed result store
//! (`cordoba-store` + the warm paths in `cordoba::store`): a warm start
//! must be *bit-identical* to a fresh computation at every thread count,
//! and store damage must degrade to a graceful miss — never a panic,
//! never a wrong answer from a structurally invalid entry.
//!
//! Like `prop_parallel.rs`, these are hand-rolled seeded generators: the
//! vendored `proptest` stub caps its case count below the coverage this
//! suite wants, so each test drives its own `StdRng` stream through
//! explicit case loops over seeded config subsets.

use cordoba::prelude::*;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_carbon::units::CarbonIntensity;
use cordoba_store::Store;
use cordoba_workloads::task::Task;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// A fresh, test-unique store directory (removed by the caller).
fn store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cordoba-prop-store-{tag}-{}", std::process::id()))
}

/// A uniformly random index in `0..n`.
fn index(rng: &mut StdRng, n: usize) -> usize {
    ((rng.gen::<f64>() * n as f64) as usize).min(n - 1)
}

/// A random order-preserving, non-empty subset of the 121-config space.
fn random_configs(rng: &mut StdRng) -> Vec<AcceleratorConfig> {
    let space = design_space();
    let keep_probability = 0.1 + 0.9 * rng.gen::<f64>();
    let mut subset: Vec<AcceleratorConfig> = space
        .iter()
        .filter(|_| rng.gen::<f64>() < keep_probability)
        .cloned()
        .collect();
    if subset.is_empty() {
        subset.push(space[index(rng, space.len())].clone());
    }
    subset
}

fn random_task(rng: &mut StdRng) -> Task {
    match index(rng, 4) {
        0 => Task::all_kernels(),
        1 => Task::xr_10_kernels(),
        2 => Task::ai_10_kernels(),
        _ => Task::xr_5_kernels(),
    }
}

fn random_grid(rng: &mut StdRng) -> CarbonIntensity {
    let grids = [
        grids::COAL,
        grids::GAS,
        grids::US_AVERAGE,
        grids::SOLAR,
        grids::WIND,
        grids::NUCLEAR,
    ];
    grids[index(rng, grids.len())]
}

/// Every file currently in the store directory.
fn entry_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

#[test]
fn warm_start_is_bit_identical_to_fresh_compute_at_every_thread_count() {
    let dir = store_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let model = EmbodiedModel::default();
    let mut rng = StdRng::seed_from_u64(0xC0DB_0B41);
    for case in 0..12 {
        let configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        let ci = random_grid(&mut rng);
        let lo = index(&mut rng, 4) as i32 + 3;
        let hi = lo + 2 + index(&mut rng, 4) as i32;
        // Space evaluation: cold fill, then warm hit, against the fresh
        // path at one, two, and auto worker threads.
        let cold = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        let fresh = evaluate_space(&configs, &task, &model).unwrap();
        assert_eq!(
            cold, fresh,
            "case {case}: cold fill must compute fresh bits"
        );
        let warm = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        assert_eq!(warm, fresh, "case {case}: warm hit must restore exact bits");
        for threads in [1, 2] {
            let threaded = evaluate_space_with_threads(&configs, &task, &model, threads).unwrap();
            assert_eq!(warm, threaded, "case {case}: threads={threads}");
        }
        // Sweep: the restored tCDP matrix must equal the computed one.
        let counts = log_sweep(lo, hi, 2);
        let cold_sweep = op_time_sweep_stored(fresh.clone(), counts.clone(), ci, &store).unwrap();
        let warm_sweep = op_time_sweep_stored(fresh.clone(), counts.clone(), ci, &store).unwrap();
        for threads in [1, 2, cordoba_par::effective_threads()] {
            let direct =
                OpTimeSweep::with_threads(fresh.clone(), counts.clone(), ci, threads).unwrap();
            assert_eq!(cold_sweep, direct, "case {case}: sweep threads={threads}");
            assert_eq!(
                warm_sweep, direct,
                "case {case}: warm sweep threads={threads}"
            );
        }
        // Beta elimination round-trips through its stored form too.
        let cold_beta = beta_sweep_stored(&fresh, &store);
        assert_eq!(cold_beta, BetaSweep::run(&fresh), "case {case}: beta");
        assert_eq!(
            beta_sweep_stored(&fresh, &store),
            cold_beta,
            "case {case}: warm beta"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_entries_miss_gracefully_and_recompute_fresh_bits() {
    let dir = store_dir("damage");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let model = EmbodiedModel::default();
    let mut rng = StdRng::seed_from_u64(0x5EED_FA11);
    for case in 0..8 {
        let configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        let ci = random_grid(&mut rng);
        let counts = log_sweep(4, 7, 2);
        let fresh = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        let sweep = op_time_sweep_stored(fresh.clone(), counts.clone(), ci, &store).unwrap();
        for path in entry_files(&dir) {
            let original = std::fs::read(&path).unwrap();
            // Truncation at a random byte: a valid entry always ends in
            // `end\n`, so every strict prefix must read as a miss.
            let cut = index(&mut rng, original.len().max(1));
            std::fs::write(&path, &original[..cut]).unwrap();
            // Random garbage: structurally invalid (it cannot echo the
            // salt/kind/key header), so it must also read as a miss.
            let damaged_read = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
            assert_eq!(damaged_read, fresh, "case {case}: truncated {path:?}");
            let garbage: Vec<u8> = (0..index(&mut rng, 64)).map(|_| rng.gen::<u8>()).collect();
            std::fs::write(&path, garbage).unwrap();
            let damaged_sweep =
                op_time_sweep_stored(fresh.clone(), counts.clone(), ci, &store).unwrap();
            assert_eq!(damaged_sweep, sweep, "case {case}: garbage {path:?}");
            std::fs::write(&path, &original).unwrap();
        }
        // Heal check: after all that damage and recovery, a warm read
        // still restores the original bits.
        assert_eq!(
            evaluate_space_stored(&configs, &task, &model, &store).unwrap(),
            fresh,
            "case {case}: healed store must serve original bits"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_salt_mismatch_invalidates_without_recomputing_wrong_bits() {
    let dir = store_dir("salt");
    let _ = std::fs::remove_dir_all(&dir);
    let model = EmbodiedModel::default();
    let configs = design_space()[..7].to_vec();
    let task = Task::xr_5_kernels();
    let current = Store::open(&dir).unwrap();
    let fresh = evaluate_space_stored(&configs, &task, &model, &current).unwrap();
    // A future code version opens the same directory with a new salt:
    // every old entry is invisible to it, and its recompute is fresh.
    let next = Store::open_with_salt(&dir, "cordoba-core-vNEXT").unwrap();
    let recomputed = evaluate_space_stored(&configs, &task, &model, &next).unwrap();
    assert_eq!(recomputed, fresh);
    // The new version overwrote the entry under its own salt, so the old
    // version now misses too (and heals by recomputing).
    let old_again = Store::open(&dir).unwrap();
    let healed = evaluate_space_stored(&configs, &task, &model, &old_again).unwrap();
    assert_eq!(healed, fresh);
    let _ = std::fs::remove_dir_all(&dir);
}
