//! Property tests for the exact-integration kernel (`cordoba_carbon::integral`).
//!
//! Two contracts are exercised here, mirroring `tests/prop_parallel.rs`'s
//! hand-rolled seeded-case style:
//!
//! 1. **Scan parity** — the `partition_point` binary search behind
//!    `TraceCi::at` must be *bit-identical* to the O(n) linear scan it
//!    replaced, for every finite query (exact sample timestamps, interior
//!    points, out-of-span points, and ±infinity).
//! 2. **Convergence** — the sampled estimators (`CiSource::mean_over`,
//!    `PowerProfile::energy_over`) are kept as executable specifications:
//!    their error against the closed-form kernel must tighten as the sample
//!    count grows, and vanish entirely for constant sources/profiles.

use cordoba_carbon::integral::{CiIntegral, PowerIntegral};
use cordoba_carbon::intensity::{CiSource, ConstantCi, DiurnalCi, SeasonalCi, TraceCi, TrendCi};
use cordoba_carbon::operational::{ConstantPower, DutyCycledPower, PowerProfile};
use cordoba_carbon::units::{CarbonIntensity, Seconds, Watts, SECONDS_PER_DAY, SECONDS_PER_HOUR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random strictly-increasing trace of 2..=40 samples with irregular
/// spacing, starting anywhere in ±1000 s.
fn random_trace_samples(rng: &mut StdRng) -> Vec<(Seconds, CarbonIntensity)> {
    let len = 2 + (rng.gen::<f64>() * 38.0) as usize;
    let mut t = -1000.0 + rng.gen::<f64>() * 2000.0;
    let mut samples = Vec::with_capacity(len);
    for _ in 0..len {
        samples.push((
            Seconds::new(t),
            CarbonIntensity::new(rng.gen::<f64>() * 900.0),
        ));
        t += 1e-3 + rng.gen::<f64>() * SECONDS_PER_HOUR;
    }
    samples
}

/// The O(n) linear scan `TraceCi::at` replaced, reproduced verbatim as the
/// parity reference.
fn linear_scan_at(samples: &[(Seconds, CarbonIntensity)], t: Seconds) -> CarbonIntensity {
    let first = samples[0];
    if t.value() <= first.0.value() {
        return first.1;
    }
    for window in samples.windows(2) {
        let (t0, c0) = window[0];
        let (t1, c1) = window[1];
        if t.value() <= t1.value() {
            let frac = (t.value() - t0.value()) / (t1.value() - t0.value());
            return c0 + (c1 - c0) * frac;
        }
    }
    samples[samples.len() - 1].1
}

#[test]
fn trace_binary_search_is_bit_identical_to_the_linear_scan() {
    let mut rng = StdRng::seed_from_u64(0x7261_6365_5f61_7431);
    for case in 0..100 {
        let samples = random_trace_samples(&mut rng);
        let trace = TraceCi::new(samples.clone()).unwrap();
        let (first, last) = trace.span();

        let mut queries: Vec<Seconds> = Vec::new();
        // Every exact sample timestamp (the duplicate-query boundary where
        // `<=` vs `<` bugs hide), plus every segment midpoint.
        for window in samples.windows(2) {
            queries.push(window[0].0);
            let mid = 0.5 * (window[0].0.value() + window[1].0.value());
            queries.push(Seconds::new(mid));
        }
        queries.push(last);
        // Out-of-span on both sides, and the infinities.
        let before = first.value() - 123.456;
        let after = last.value() + 123.456;
        queries.push(Seconds::new(before));
        queries.push(Seconds::new(after));
        queries.push(Seconds::new(f64::NEG_INFINITY));
        queries.push(Seconds::new(f64::INFINITY));
        // And random points across the extended span.
        for _ in 0..20 {
            let span = last.value() - first.value();
            let q = first.value() - span + rng.gen::<f64>() * 3.0 * span;
            queries.push(Seconds::new(q));
        }

        for &q in &queries {
            let fast = trace.at(q);
            let slow = linear_scan_at(&samples, q);
            assert_eq!(
                fast.value().to_bits(),
                slow.value().to_bits(),
                "case {case}: query {} got {} (binary) vs {} (scan)",
                q.value(),
                fast.value(),
                slow.value()
            );
        }
    }
}

#[test]
fn trace_integral_matches_a_trapezoid_reference() {
    let mut rng = StdRng::seed_from_u64(0x7472_6170_657a_6f69);
    for case in 0..100 {
        let samples = random_trace_samples(&mut rng);
        let trace = TraceCi::new(samples.clone()).unwrap();
        let (first, last) = trace.span();
        let span = last.value() - first.value();
        // A random interval poking out of the span on either side.
        let mut a = first.value() - 0.5 * span + rng.gen::<f64>() * 2.0 * span;
        let mut b = first.value() - 0.5 * span + rng.gen::<f64>() * 2.0 * span;
        if b < a {
            std::mem::swap(&mut a, &mut b);
        }
        // Reference: trapezoid over every breakpoint inside [a, b], with
        // values from the (already parity-checked) linear scan.
        let mut cuts = vec![a, b];
        for &(ts, _) in &samples {
            if ts.value() > a && ts.value() < b {
                cuts.push(ts.value());
            }
        }
        cuts.sort_by(f64::total_cmp);
        let mut reference = 0.0;
        for pair in cuts.windows(2) {
            let lo = linear_scan_at(&samples, Seconds::new(pair[0])).value();
            let hi = linear_scan_at(&samples, Seconds::new(pair[1])).value();
            reference += 0.5 * (lo + hi) * (pair[1] - pair[0]);
        }
        let exact = trace
            .integral_over(Seconds::new(a), Seconds::new(b))
            .value();
        let scale = reference.abs().max(1.0);
        assert!(
            (exact - reference).abs() / scale < 1e-9,
            "case {case}: prefix-sum {exact} vs trapezoid {reference}"
        );
    }
}

#[test]
fn sampled_mean_converges_to_the_exact_kernel() {
    let mut rng = StdRng::seed_from_u64(0x636f_6e76_6572_6765);
    for case in 0..30 {
        let mean = CarbonIntensity::new(150.0 + rng.gen::<f64>() * 500.0);
        let amplitude = rng.gen::<f64>() * 0.9 * mean.value();
        let source: Box<dyn CiIntegral> = match case % 3 {
            0 => Box::new(DiurnalCi::new(mean, CarbonIntensity::new(amplitude)).unwrap()),
            1 => Box::new(TrendCi::new(mean, rng.gen::<f64>() * 0.3).unwrap()),
            _ => Box::new(
                SeasonalCi::new(
                    mean,
                    rng.gen::<f64>() * 0.9,
                    rng.gen::<f64>() * 0.9,
                    rng.gen::<f64>() * 0.3,
                )
                .unwrap(),
            ),
        };
        let duration = Seconds::from_days(1.0 + rng.gen::<f64>() * 29.0);
        let exact = source.mean_exact(Seconds::ZERO, duration).value();
        assert!(exact.is_finite() && exact > 0.0);
        // Midpoint error is O(dt^2): an 8x denser grid must cut the error
        // by ~64x; demand at least 4x (down to floating-point noise).
        let mut prev = f64::INFINITY;
        for samples in [256_usize, 2_048, 16_384] {
            let err = (source.mean_over(duration, samples).value() - exact).abs() / exact;
            assert!(
                err <= (prev / 4.0).max(1e-12),
                "case {case}: {samples} samples error {err} after {prev}"
            );
            prev = err;
        }
        assert!(prev < 1e-4, "case {case}: final error {prev}");
    }
}

#[test]
fn constant_ci_sampled_mean_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x636f_6e73_745f_6369);
    for _ in 0..50 {
        let c = CarbonIntensity::new(rng.gen::<f64>() * 900.0);
        let source = ConstantCi::new(c);
        let duration = Seconds::new(1e-3 + rng.gen::<f64>() * 1e9);
        let exact = source.mean_exact(Seconds::ZERO, duration);
        assert_eq!(exact.value().to_bits(), c.value().to_bits());
        // 1- and 2-sample midpoint means involve only exact float ops, so
        // the sampled spec matches bit-for-bit...
        for samples in [1_usize, 2] {
            let sampled = source.mean_over(duration, samples);
            assert_eq!(sampled.value().to_bits(), c.value().to_bits());
        }
        // ... and longer sums stay within accumulated rounding noise.
        let sampled = source.mean_over(duration, 10_000).value();
        assert!((sampled - c.value()).abs() <= 1e-12 * c.value());
    }
}

#[test]
fn constant_power_sampled_energy_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x636f_6e73_745f_7077);
    for _ in 0..50 {
        let p = ConstantPower::new(Watts::new(rng.gen::<f64>() * 50.0));
        let duration = Seconds::new(1e-3 + rng.gen::<f64>() * 1e9);
        let exact = p.energy_integral(Seconds::ZERO, duration);
        for samples in [1_usize, 2] {
            let sampled = p.energy_over(duration, samples);
            assert_eq!(sampled.value().to_bits(), exact.value().to_bits());
        }
    }
}

#[test]
fn sampled_energy_converges_to_the_exact_integral() {
    let mut rng = StdRng::seed_from_u64(0x6475_7479_5f63_7963);
    for case in 0..30 {
        let active = Watts::new(1.0 + rng.gen::<f64>() * 20.0);
        let idle = Watts::new(rng.gen::<f64>() * 1.0);
        let period = Seconds::new(60.0 + rng.gen::<f64>() * SECONDS_PER_DAY);
        let duty = rng.gen::<f64>();
        let p = DutyCycledPower::new(active, idle, period, duty).unwrap();
        let duration = period * (0.5 + rng.gen::<f64>() * 19.5);
        let exact = p.energy_integral(Seconds::ZERO, duration).value();
        // The profile is piecewise constant, so a midpoint step only errs
        // when it straddles a power jump: |err| <= jumps * |Δp| * dt. That
        // bound tightens linearly with the sample count.
        let jumps = 2.0 * (duration.value() / period.value()).ceil() + 2.0;
        let dp = (active.value() - idle.value()).abs();
        for steps in [256_usize, 2_048, 16_384] {
            let dt = duration.value() / steps as f64;
            let sampled = p.energy_over(duration, steps).value();
            let bound = jumps * dp * dt + 1e-9 * exact.abs();
            assert!(
                (sampled - exact).abs() <= bound,
                "case {case}: {steps} steps error {} over bound {bound}",
                (sampled - exact).abs()
            );
        }
    }
}
