//! Observability must be a pure side channel: every sweep and solver
//! returns *bit-identical* results (exact `f64` equality via derived
//! `PartialEq`) whether tracing and metrics are enabled or disabled, at
//! every thread count.
//!
//! Span collection and counter updates share global state, so the whole
//! contract lives in one `#[test]` — this file is its own test binary and
//! the single function keeps the enable/disable toggles race-free.

use cordoba::prelude::*;
use cordoba::uncertainty::monte_carlo_tcdp_with_threads;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::config::MemoryIntegration;
use cordoba_accel::params::TechTuning;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_carbon::units::Bytes;
use cordoba_workloads::task::Task;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 1, an oversubscribed explicit count, and the auto (0 = `effective_threads`)
/// path all have to agree with the obs-off baseline.
const THREAD_COUNTS: [usize; 3] = [1, 2, 0];

/// A uniformly random index in `0..n`.
fn index(rng: &mut StdRng, n: usize) -> usize {
    ((rng.gen::<f64>() * n as f64) as usize).min(n - 1)
}

/// A random order-preserving, non-empty subset of the 121-config space.
fn random_configs(rng: &mut StdRng) -> Vec<AcceleratorConfig> {
    let space = design_space();
    let keep_probability = 0.1 + 0.9 * rng.gen::<f64>();
    let mut subset: Vec<AcceleratorConfig> = space
        .iter()
        .filter(|_| rng.gen::<f64>() < keep_probability)
        .cloned()
        .collect();
    if subset.is_empty() {
        subset.push(space[index(rng, space.len())].clone());
    }
    subset
}

/// A configuration whose tuning is poisoned so characterization fails.
fn poisoned_config(name: &str) -> AcceleratorConfig {
    let mut tuning = TechTuning::n7();
    tuning.mac_unit_area_mm2 = f64::NAN;
    AcceleratorConfig::with_tuning(
        name,
        16,
        Bytes::from_mebibytes(8.0),
        MemoryIntegration::OnDie,
        tuning,
    )
    .unwrap()
}

/// Everything the suite computes for one seeded case, bundled so the
/// obs-off and obs-on passes compare with a single `assert_eq!`.
#[derive(Debug, Clone, PartialEq)]
struct CaseResult {
    points: Vec<DesignPoint>,
    quarantined: Vec<String>,
    sweep: OpTimeSweep,
    /// The attribution ledger, serialized: shortest-round-trip `f64`
    /// formatting makes string equality bit equality.
    attribution: String,
    beta: String,
    mc_mean_bits: u64,
    mc_stddev_bits: u64,
}

fn run_case(seed: u64, threads: usize) -> CaseResult {
    let model = EmbodiedModel::default();
    let mut rng = StdRng::seed_from_u64(0x0B5D ^ seed);
    let mut configs = random_configs(&mut rng);
    let task = Task::xr_5_kernels();
    let poisons = 1 + index(&mut rng, 3);
    for p in 0..poisons {
        let at = index(&mut rng, configs.len() + 1);
        configs.insert(at, poisoned_config(&format!("poison{p}")));
    }

    let resilient = evaluate_space_resilient_with_threads(&configs, &task, &model, threads);
    let quarantined = resilient
        .failures
        .iter()
        .map(|f| f.name.clone())
        .collect::<Vec<_>>();

    let counts: Vec<f64> = (0..1 + index(&mut rng, 10))
        .map(|_| 10f64.powf(1.0 + 8.0 * rng.gen::<f64>()))
        .collect();
    let sweep =
        OpTimeSweep::with_threads(resilient.points.clone(), counts, grids::US_AVERAGE, threads)
            .unwrap();

    let beta_sweep = BetaSweep::run(&resilient.points);

    // The attribution ledger decomposes the sweep's tCDP; it must
    // reconcile bit-for-bit against the matrix it was derived from at
    // every thread count, with or without observability.
    let report = AttributionReport::from_sweep(&sweep)
        .unwrap()
        .with_quarantine(&resilient.failures)
        .with_beta(&beta_sweep);
    report.check_against(&sweep).unwrap();
    let attribution = report.to_json();
    let beta = format!(
        "{:?}",
        beta_sweep
            .solve_transitions_with_threads(0.0, 1e3, 1e-3, 4_000, threads)
            .unwrap()
    );

    let spec = MonteCarloSpec::new(64, 0xDE7E ^ seed);
    let mc = monte_carlo_tcdp_with_threads(&resilient.points[0], &spec, threads).unwrap();

    CaseResult {
        points: resilient.points,
        quarantined,
        sweep,
        attribution,
        beta,
        mc_mean_bits: mc.mean.to_bits(),
        mc_stddev_bits: mc.std_dev.to_bits(),
    }
}

#[test]
fn obs_on_is_bit_identical_to_obs_off_at_every_thread_count() {
    assert!(!cordoba_obs::tracing_enabled());
    assert!(!cordoba_obs::metrics_enabled());
    for seed in 0..12u64 {
        // Baseline: observability fully disabled, sequential.
        let baseline = run_case(seed, 1);
        for threads in THREAD_COUNTS {
            let quiet = run_case(seed, threads);
            assert_eq!(baseline, quiet, "obs off: seed {seed}, {threads} threads");
        }

        cordoba_obs::set_tracing_enabled(true);
        cordoba_obs::set_metrics_enabled(true);
        for threads in THREAD_COUNTS {
            let traced = run_case(seed, threads);
            assert_eq!(baseline, traced, "obs on: seed {seed}, {threads} threads");
        }
        cordoba_obs::set_tracing_enabled(false);
        cordoba_obs::set_metrics_enabled(false);

        // The traced runs actually recorded something — the side channel is
        // live, not short-circuited — and the profiler agrees with itself
        // whether it aggregates the live buffer or the exported trace.
        let live_profile = cordoba_obs::profile_report();
        let trace = cordoba_obs::drain_chrome_trace();
        let check = cordoba_obs::validate_chrome_trace(&trace).unwrap();
        assert!(
            check.spans >= 1,
            "seed {seed}: no spans collected: {check:?}"
        );
        let parsed_profile = cordoba_obs::profile_chrome_trace(&trace).unwrap();
        assert_eq!(
            live_profile, parsed_profile,
            "seed {seed}: live and trace-derived profiles diverged"
        );
        // The trace validator counts every `ph:"X"` event as a span,
        // which includes the zero-duration instants the profiler tallies
        // separately.
        assert_eq!(
            live_profile.spans + live_profile.instants,
            check.spans,
            "seed {seed}"
        );
        assert!(
            live_profile
                .entries
                .iter()
                .any(|e| e.name.starts_with("core/")),
            "seed {seed}: no core spans in the profile: {live_profile:?}"
        );
        for entry in &live_profile.entries {
            assert!(entry.self_ns <= entry.total_ns, "seed {seed}: {entry:?}");
            assert!(entry.count >= 1, "seed {seed}: {entry:?}");
        }
        cordoba_obs::clear_trace();
    }
    let counters = cordoba_obs::counter_snapshot();
    assert!(
        counters
            .iter()
            .any(|(name, value)| *name == "events/quarantine" && *value > 0),
        "quarantine events were not counted: {counters:?}"
    );
}
