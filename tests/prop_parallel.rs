//! Determinism contract of the parallel sweep engine: every parallel
//! entry point must return results *bit-identical* (exact `f64` equality,
//! via derived `PartialEq`) to the sequential path at every thread count.
//!
//! The vendored `proptest` stub caps its case count below the coverage we
//! want here, so these are hand-rolled seeded generators: each test drives
//! its own `StdRng` stream through explicit case loops, 270 cases across
//! the suite, and every case compares `threads = 1` against 2, 4, and 16.

use cordoba::prelude::*;
use cordoba::uncertainty::{
    monte_carlo_regret_with_threads, monte_carlo_source_tcdp_sampled_with_threads,
    monte_carlo_source_tcdp_with_threads, monte_carlo_tcdp_with_threads,
};
use cordoba_accel::config::{AcceleratorConfig, MemoryIntegration};
use cordoba_accel::params::TechTuning;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::integral::CiIntegral;
use cordoba_carbon::intensity::grids;
use cordoba_carbon::intensity::{ConstantCi, SeasonalCi, TrendCi};
use cordoba_carbon::units::Bytes;
use cordoba_workloads::task::Task;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [2, 4, 16];

/// A uniformly random index in `0..n`.
fn index(rng: &mut StdRng, n: usize) -> usize {
    ((rng.gen::<f64>() * n as f64) as usize).min(n - 1)
}

/// A random order-preserving, non-empty subset of the 121-config space.
fn random_configs(rng: &mut StdRng) -> Vec<AcceleratorConfig> {
    let space = design_space();
    let keep_probability = 0.1 + 0.9 * rng.gen::<f64>();
    let mut subset: Vec<AcceleratorConfig> = space
        .iter()
        .filter(|_| rng.gen::<f64>() < keep_probability)
        .cloned()
        .collect();
    if subset.is_empty() {
        subset.push(space[index(rng, space.len())].clone());
    }
    subset
}

fn random_task(rng: &mut StdRng) -> Task {
    match index(rng, 4) {
        0 => Task::all_kernels(),
        1 => Task::xr_10_kernels(),
        2 => Task::xr_5_kernels(),
        _ => Task::ai_5_kernels(),
    }
}

/// A configuration whose tuning is poisoned so characterization fails.
fn poisoned_config(name: &str) -> AcceleratorConfig {
    let mut tuning = TechTuning::n7();
    tuning.mac_unit_area_mm2 = f64::NAN;
    AcceleratorConfig::with_tuning(
        name,
        16,
        Bytes::from_mebibytes(8.0),
        MemoryIntegration::OnDie,
        tuning,
    )
    .unwrap()
}

#[test]
fn evaluate_space_is_bit_identical_across_thread_counts() {
    let model = EmbodiedModel::default();
    for seed in 0..70u64 {
        let mut rng = StdRng::seed_from_u64(0xE5A1 ^ seed);
        let configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        let sequential = evaluate_space_with_threads(&configs, &task, &model, 1).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = evaluate_space_with_threads(&configs, &task, &model, threads).unwrap();
            assert_eq!(sequential, parallel, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn op_time_sweep_is_bit_identical_across_thread_counts() {
    let model = EmbodiedModel::default();
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(0x0F5E ^ seed);
        let configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        let points = evaluate_space_with_threads(&configs, &task, &model, 1).unwrap();
        let counts: Vec<f64> = (0..1 + index(&mut rng, 40))
            .map(|_| 10f64.powf(1.0 + 8.0 * rng.gen::<f64>()))
            .collect();
        let sequential =
            OpTimeSweep::with_threads(points.clone(), counts.clone(), grids::US_AVERAGE, 1)
                .unwrap();
        for threads in THREAD_COUNTS {
            let parallel = OpTimeSweep::with_threads(
                points.clone(),
                counts.clone(),
                grids::US_AVERAGE,
                threads,
            )
            .unwrap();
            assert_eq!(sequential, parallel, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let model = EmbodiedModel::default();
    let space = design_space();
    let task = Task::xr_5_kernels();
    let points = evaluate_space_with_threads(&space, &task, &model, 1).unwrap();
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x3CA0 ^ seed);
        let samples = 1 + index(&mut rng, 300);
        let spec = MonteCarloSpec::new(samples, rng.gen::<u64>());
        let point = &points[index(&mut rng, points.len())];
        let sequential = monte_carlo_tcdp_with_threads(point, &spec, 1).unwrap();
        assert_eq!(sequential.samples, samples);
        // A handful of candidates for the regret study, sequential baseline.
        let candidates: Vec<DesignPoint> = (0..2 + index(&mut rng, 6))
            .map(|_| points[index(&mut rng, points.len())].clone())
            .collect();
        let regret_sequential = monte_carlo_regret_with_threads(&candidates, &spec, 1).unwrap();
        for threads in THREAD_COUNTS {
            let parallel = monte_carlo_tcdp_with_threads(point, &spec, threads).unwrap();
            assert_eq!(sequential, parallel, "seed {seed}, {threads} threads");
            let regret_parallel =
                monte_carlo_regret_with_threads(&candidates, &spec, threads).unwrap();
            assert_eq!(
                regret_sequential, regret_parallel,
                "regret: seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn source_monte_carlo_is_bit_identical_across_thread_counts() {
    let model = EmbodiedModel::default();
    let space = design_space();
    let task = Task::ai_5_kernels();
    let points = evaluate_space_with_threads(&space, &task, &model, 1).unwrap();
    let flat = ConstantCi::new(grids::US_AVERAGE);
    let trend = TrendCi::new(grids::COAL, 0.12).unwrap();
    let seasonal = SeasonalCi::solar_rich();
    let sources: [&dyn CiIntegral; 3] = [&flat, &trend, &seasonal];
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x50C4 ^ seed);
        let samples = 1 + index(&mut rng, 300);
        let spec = SourceMonteCarloSpec::new(samples, rng.gen::<u64>());
        let point = &points[index(&mut rng, points.len())];
        let sequential = monte_carlo_source_tcdp_with_threads(point, &sources, &spec, 1).unwrap();
        assert_eq!(sequential.samples, samples);
        let sampled_sequential =
            monte_carlo_source_tcdp_sampled_with_threads(point, &sources, &spec, 32, 1).unwrap();
        for threads in THREAD_COUNTS {
            let parallel =
                monte_carlo_source_tcdp_with_threads(point, &sources, &spec, threads).unwrap();
            assert_eq!(sequential, parallel, "seed {seed}, {threads} threads");
            let sampled_parallel =
                monte_carlo_source_tcdp_sampled_with_threads(point, &sources, &spec, 32, threads)
                    .unwrap();
            assert_eq!(
                sampled_sequential, sampled_parallel,
                "sampled: seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn resilient_evaluation_preserves_failure_ordering() {
    let model = EmbodiedModel::default();
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xFA11 ^ seed);
        let mut configs = random_configs(&mut rng);
        let task = random_task(&mut rng);
        let healthy = configs.len();
        let poisons = 1 + index(&mut rng, 5);
        for p in 0..poisons {
            let at = index(&mut rng, configs.len() + 1);
            configs.insert(at, poisoned_config(&format!("poison{p}")));
        }
        let sequential = evaluate_space_resilient_with_threads(&configs, &task, &model, 1);
        assert_eq!(sequential.points.len(), healthy, "seed {seed}");
        assert_eq!(sequential.failures.len(), poisons, "seed {seed}");
        for threads in THREAD_COUNTS {
            let parallel = evaluate_space_resilient_with_threads(&configs, &task, &model, threads);
            assert_eq!(
                sequential.points, parallel.points,
                "seed {seed}, {threads} threads"
            );
            // Failures carry the poisoned NaN inside their error payload, so
            // derived equality is self-unequal; compare the rendered report.
            let render = |r: &ResilientEval| -> Vec<String> {
                r.failures.iter().map(ToString::to_string).collect()
            };
            assert_eq!(
                render(&sequential),
                render(&parallel),
                "seed {seed}, {threads} threads"
            );
        }
        // Quarantine order is input order: failures appear exactly as the
        // poisoned configs do in the sweep's input list.
        let quarantined: Vec<&str> = sequential
            .failures
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        let expected: Vec<&str> = configs
            .iter()
            .map(AcceleratorConfig::name)
            .filter(|name| name.starts_with("poison"))
            .collect();
        assert_eq!(
            quarantined, expected,
            "seed {seed}: quarantine out of input order"
        );
    }
}

#[test]
fn beta_transitions_are_bit_identical_across_thread_counts() {
    let model = EmbodiedModel::default();
    let space = design_space();
    let points = evaluate_space_with_threads(&space, &Task::all_kernels(), &model, 1).unwrap();
    let sweep = BetaSweep::run(&points);
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(0xBE7A ^ seed);
        let beta_lo = 200.0 * rng.gen::<f64>();
        let beta_hi = beta_lo + 1.0 + 400.0 * rng.gen::<f64>();
        let tol = 1e-4 + rng.gen::<f64>();
        let budget = index(&mut rng, 400);
        let sequential = sweep
            .solve_transitions_with_threads(beta_lo, beta_hi, tol, budget, 1)
            .unwrap();
        for threads in THREAD_COUNTS {
            let parallel = sweep
                .solve_transitions_with_threads(beta_lo, beta_hi, tol, budget, threads)
                .unwrap();
            assert_eq!(sequential, parallel, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn skyline_and_kd_fronts_match_the_naive_scans() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0x2D00 ^ seed);
        let n = 1 + index(&mut rng, 400);
        let cloud: Vec<Point2> = (0..n)
            .map(|i| {
                let x = 100.0 * rng.gen::<f64>();
                let y = 100.0 * rng.gen::<f64>();
                Point2::new(format!("p{i}"), x, y)
            })
            .collect();
        assert_eq!(
            pareto_indices(&cloud),
            pareto_indices_naive(&cloud),
            "seed {seed}"
        );
        let dims = 2 + index(&mut rng, 3);
        let kd: Vec<PointK> = (0..n)
            .map(|i| {
                let objectives = (0..dims).map(|_| 10.0 * rng.gen::<f64>()).collect();
                PointK::new(format!("k{i}"), objectives)
            })
            .collect();
        assert_eq!(
            pareto_indices_kd(&kd),
            pareto_indices_kd_naive(&kd),
            "kd: seed {seed}"
        );
    }
}
